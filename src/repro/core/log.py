"""The TEE-Perf log: Figure 2 of the paper, byte for byte.

The log lives in shared memory between the profiled application (inside
the TEE) and the recorder (on the host).  It consists of a 64-byte
header followed by fixed-size 24-byte entries::

    header  (8 x u64)                     entry (3 x u64)
    ------------------------------        -------------------------------
    0  magic ("TEEPERF\\0")               0  kind (bit 63) | counter value
    1  flags | version                    1  call/ret instruction address
    2  shared-memory base address         2  thread id
    3  process id
    4  log size (max entries)
    5  tail index (next free entry)
    6  address of profiler function
    7  reserved

Entries are reserved with a fetch-and-add on the tail, so writers never
contend on a lock; reservations past the maximum size are *dropped* and
counted, and the analyzer independently dismisses anything past the
maximum — the paper's rule for records "which might be wrong at the end
of the log".

The flags word is the only mutable control surface: bit 0 (ACTIVE)
gates recording and may be flipped while the application runs, which is
how dynamic de-/activation and selective phases work without adding a
critical section to the hot path.
"""

import itertools
import mmap
import struct
from dataclasses import dataclass

from repro.core.errors import LogFormatError

MAGIC = int.from_bytes(b"TEEPERF\x00", "little")
HEADER_SIZE = 64
VERSION = 1
# Version 2 extends each entry with the call-site address — the second
# argument the compiler passes to __cyg_profile_func_enter.  The
# header's version field exists exactly so the analyzer can support
# multiple entry layouts (§II-B).
VERSION_2 = 2
ENTRY_SIZE = 24  # version-1 layout
ENTRY_SIZE_V2 = 32
_ENTRY_SIZES = {VERSION: ENTRY_SIZE, VERSION_2: ENTRY_SIZE_V2}

# Flags (low 16 bits of header word 1; the version sits above them).
FLAG_ACTIVE = 1 << 0
FLAG_MULTITHREAD = 1 << 1
# Event mask: which events are measured (both set by default).
FLAG_MASK_CALLS = 1 << 2
FLAG_MASK_RETS = 1 << 3

_VERSION_SHIFT = 16

# Entry word 0: bit 63 is the kind, the low 63 bits the counter value.
KIND_CALL = 0
KIND_RET = 1
_KIND_BIT = 1 << 63
COUNTER_MASK = _KIND_BIT - 1

_HEADER = struct.Struct("<8Q")
_ENTRY = struct.Struct("<3Q")
_ENTRY_V2 = struct.Struct("<4Q")

# Entries decoded per ingestion chunk.  8192 v2 entries are 256 KiB of
# raw log — big enough to amortise the struct dispatch, small enough
# that a streaming reader never holds more than a sliver of the log.
DEFAULT_CHUNK_ENTRIES = 8192


@dataclass(frozen=True)
class LogEntry:
    """One decoded call/return record."""

    kind: int  # KIND_CALL or KIND_RET
    counter: int  # software-counter value at the event
    addr: int  # runtime address of the entered/exited function
    tid: int  # id of the executing thread
    call_site: int = 0  # v2 logs: runtime address of the call site

    @property
    def is_call(self):
        return self.kind == KIND_CALL

    @property
    def is_ret(self):
        return self.kind == KIND_RET


def _decode_entries(buf, version, start, count):
    """Decode `count` consecutive entries beginning at index `start`.

    One ``iter_unpack`` sweep over a memoryview slice — the bulk path
    shared by :meth:`SharedLog.iter_chunks` and :class:`LogStream`,
    roughly 3x faster than per-entry ``unpack_from``.
    """
    entry_size = _ENTRY_SIZES[version]
    offset = HEADER_SIZE + start * entry_size
    view = memoryview(buf)[offset : offset + count * entry_size]
    entries = []
    append = entries.append
    if entry_size == ENTRY_SIZE_V2:
        for word0, addr, tid, call_site in _ENTRY_V2.iter_unpack(view):
            append(
                LogEntry(
                    KIND_RET if word0 & _KIND_BIT else KIND_CALL,
                    word0 & COUNTER_MASK,
                    addr,
                    tid,
                    call_site,
                )
            )
    else:
        for word0, addr, tid in _ENTRY.iter_unpack(view):
            append(
                LogEntry(
                    KIND_RET if word0 & _KIND_BIT else KIND_CALL,
                    word0 & COUNTER_MASK,
                    addr,
                    tid,
                )
            )
    return entries


class SharedLog:
    """The shared-memory log: header + append-only entry array.

    The buffer is a plain ``bytearray``; in live mode real threads
    append concurrently (reservation is GIL-atomic), in simulated mode
    the machine serialises writers anyway.  ``capacity`` is the maximum
    number of entries, fixed at creation exactly as in the paper.
    """

    def __init__(self, buf):
        if len(buf) < HEADER_SIZE:
            raise LogFormatError(
                f"buffer of {len(buf)} bytes is smaller than the header"
            )
        self._buf = buf
        header = _HEADER.unpack_from(buf, 0)
        if header[0] != MAGIC:
            raise LogFormatError("bad magic: not a TEE-Perf log")
        version = (header[1] >> _VERSION_SHIFT) & 0xFFFF
        if version not in _ENTRY_SIZES:
            raise LogFormatError(
                f"unsupported log version {version} "
                f"(known: {sorted(_ENTRY_SIZES)})"
            )
        self._entry_size = _ENTRY_SIZES[version]
        self._capacity = header[4]
        self._reservations = itertools.count(self.tail)
        self.dropped = 0

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def create(
        cls,
        capacity,
        pid=0,
        profiler_addr=0,
        shm_base=0x7F00_0000_0000,
        multithread=True,
        version=VERSION,
    ):
        """Allocate and initialise a log for `capacity` entries."""
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        if version not in _ENTRY_SIZES:
            raise ValueError(
                f"unsupported version {version} (known: "
                f"{sorted(_ENTRY_SIZES)})"
            )
        buf = bytearray(HEADER_SIZE + capacity * _ENTRY_SIZES[version])
        flags = FLAG_MASK_CALLS | FLAG_MASK_RETS
        if multithread:
            flags |= FLAG_MULTITHREAD
        _HEADER.pack_into(
            buf,
            0,
            MAGIC,
            flags | (version << _VERSION_SHIFT),
            shm_base,
            pid,
            capacity,
            0,  # tail
            profiler_addr,
            0,  # reserved
        )
        return cls(buf)

    @classmethod
    def from_bytes(cls, data):
        """Wrap an existing log image (e.g. read back from disk)."""
        return cls(bytearray(data))

    @classmethod
    def load(cls, path):
        """Read a persisted log file."""
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())

    def dump(self, path):
        """Persist the log (what the recorder wrapper does after a run)."""
        self._store_tail()
        with open(path, "wb") as fh:
            fh.write(bytes(self._buf))

    def to_bytes(self):
        """The full log image, header synchronised."""
        self._store_tail()
        return bytes(self._buf)

    # ------------------------------------------------------------------
    # Header accessors

    def _word(self, index):
        return struct.unpack_from("<Q", self._buf, index * 8)[0]

    def _set_word(self, index, value):
        struct.pack_into("<Q", self._buf, index * 8, value)

    @property
    def flags(self):
        return self._word(1) & 0xFFFF

    @property
    def version(self):
        return (self._word(1) >> _VERSION_SHIFT) & 0xFFFF

    @property
    def shm_base(self):
        return self._word(2)

    @property
    def pid(self):
        return self._word(3)

    @property
    def capacity(self):
        return self._capacity

    @property
    def tail(self):
        return self._word(5)

    @property
    def profiler_addr(self):
        return self._word(6)

    def set_profiler_addr(self, addr):
        """The recorder stores the well-known function address here."""
        self._set_word(6, addr)

    def set_pid(self, pid):
        self._set_word(3, pid)

    @property
    def active(self):
        return bool(self.flags & FLAG_ACTIVE)

    def set_active(self, active):
        """Flip the ACTIVE flag (atomic on real hardware; here the GIL
        plays that role).  Safe to call while the application runs."""
        word = self._word(1)
        if active:
            word |= FLAG_ACTIVE
        else:
            word &= ~FLAG_ACTIVE
        self._set_word(1, word)

    @property
    def multithread(self):
        return bool(self.flags & FLAG_MULTITHREAD)

    @property
    def entry_size(self):
        return self._entry_size

    def measures(self, kind):
        """Whether the event mask admits this event kind."""
        flag = FLAG_MASK_CALLS if kind == KIND_CALL else FLAG_MASK_RETS
        return bool(self.flags & flag)

    def set_event_mask(self, calls=True, rets=True):
        """Choose which events are measured — changeable while the
        application runs, like the ACTIVE flag (§II-B)."""
        word = self._word(1)
        word &= ~(FLAG_MASK_CALLS | FLAG_MASK_RETS)
        if calls:
            word |= FLAG_MASK_CALLS
        if rets:
            word |= FLAG_MASK_RETS
        self._set_word(1, word)

    # ------------------------------------------------------------------
    # Appending (the injected code's hot path)

    def try_reserve(self):
        """Fetch-and-add on the tail; ``None`` once the log is full."""
        index = next(self._reservations)
        if index >= self._capacity:
            self.dropped += 1
            return None
        return index

    def write_entry(self, index, kind, counter, addr, tid, call_site=0):
        """Fill a previously reserved slot."""
        word0 = (counter & COUNTER_MASK) | (_KIND_BIT if kind else 0)
        offset = HEADER_SIZE + index * self._entry_size
        if self._entry_size == ENTRY_SIZE_V2:
            _ENTRY_V2.pack_into(
                self._buf, offset, word0, addr, tid, call_site
            )
        else:
            _ENTRY.pack_into(self._buf, offset, word0, addr, tid)

    def append(self, kind, counter, addr, tid, call_site=0):
        """Reserve and write in one step; False when the log was full
        or the event mask filters this kind out."""
        if not self.measures(kind):
            return False
        index = self.try_reserve()
        if index is None:
            return False
        self.write_entry(index, kind, counter, addr, tid, call_site)
        return True

    # ------------------------------------------------------------------
    # Reading (the analyzer's side)

    def __len__(self):
        return min(self.tail_or_live(), self._capacity)

    def tail_or_live(self):
        """Entries written: live reservation counter or stored tail,
        whichever has advanced further."""
        return max(self._next_reservation(), self.tail)

    def _next_reservation(self):
        # Peek at the itertools counter without consuming it.
        probe = self._reservations.__reduce__()[1][0]
        return probe

    def entry(self, index):
        """Decode entry `index` (layout chosen by the header version)."""
        if index >= min(self.tail_or_live(), self._capacity):
            raise IndexError(f"entry {index} past end of log")
        offset = HEADER_SIZE + index * self._entry_size
        call_site = 0
        if self._entry_size == ENTRY_SIZE_V2:
            word0, addr, tid, call_site = _ENTRY_V2.unpack_from(
                self._buf, offset
            )
        else:
            word0, addr, tid = _ENTRY.unpack_from(self._buf, offset)
        kind = KIND_RET if word0 & _KIND_BIT else KIND_CALL
        return LogEntry(kind, word0 & COUNTER_MASK, addr, tid, call_site)

    def __iter__(self):
        for index in range(min(self.tail_or_live(), self._capacity)):
            yield self.entry(index)

    def iter_chunks(self, chunk_size=DEFAULT_CHUNK_ENTRIES):
        """Yield entries as lists of at most `chunk_size`, in log order.

        The streaming analyzer's ingestion path: decoding happens one
        chunk at a time (bulk ``iter_unpack``), so a consumer never
        holds more than `chunk_size` decoded entries per chunk.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        total = min(self.tail_or_live(), self._capacity)
        for start in range(0, total, chunk_size):
            yield _decode_entries(
                self._buf, self.version, start, min(chunk_size, total - start)
            )

    def _store_tail(self):
        self._set_word(5, min(self._next_reservation(), self._capacity))

    def __repr__(self):
        return (
            f"SharedLog(entries={len(self)}/{self._capacity}, "
            f"active={self.active}, dropped={self.dropped})"
        )


class LogStream:
    """A read-only, chunked view of a persisted log.

    Where :class:`SharedLog` materialises the whole image in a
    ``bytearray``, a stream parses the 64-byte header eagerly and
    decodes entries lazily in fixed-size chunks, so the analyzer can
    keep up with logs far larger than memory: :meth:`open` maps the
    file with ``mmap`` (the kernel pages the log in and out as chunks
    are decoded) and :meth:`chunks` never holds more than one decoded
    chunk at a time.

    Header accessors mirror :class:`SharedLog`; the write side does
    not exist here by design.
    """

    def __init__(self, buf, chunk_size=DEFAULT_CHUNK_ENTRIES, closer=None):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        if len(buf) < HEADER_SIZE:
            raise LogFormatError(
                f"buffer of {len(buf)} bytes is smaller than the header"
            )
        header = _HEADER.unpack_from(buf, 0)
        if header[0] != MAGIC:
            raise LogFormatError("bad magic: not a TEE-Perf log")
        version = (header[1] >> _VERSION_SHIFT) & 0xFFFF
        if version not in _ENTRY_SIZES:
            raise LogFormatError(
                f"unsupported log version {version} "
                f"(known: {sorted(_ENTRY_SIZES)})"
            )
        self._buf = buf
        self._header = header
        self._version = version
        self._entry_size = _ENTRY_SIZES[version]
        self.chunk_size = chunk_size
        self._closer = closer
        # Entries available: the stored tail, clipped by capacity (the
        # analyzer's dismissal rule) and by the bytes actually present
        # (a snapshot taken mid-write may be short).
        in_buffer = (len(buf) - HEADER_SIZE) // self._entry_size
        self._count = min(header[5], header[4], in_buffer)

    @classmethod
    def open(cls, path, chunk_size=DEFAULT_CHUNK_ENTRIES):
        """Stream a persisted log file through an ``mmap`` mapping.

        Falls back to reading the file into memory where mapping is
        impossible (empty file, exotic filesystem).
        """
        fh = open(path, "rb")
        try:
            buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            data = fh.read()
            fh.close()
            return cls(data, chunk_size)
        return cls(buf, chunk_size, closer=lambda: (buf.close(), fh.close()))

    # ------------------------------------------------------------------
    # Header accessors (the SharedLog subset a reader needs)

    @property
    def version(self):
        return self._version

    @property
    def flags(self):
        return self._header[1] & 0xFFFF

    @property
    def shm_base(self):
        return self._header[2]

    @property
    def pid(self):
        return self._header[3]

    @property
    def capacity(self):
        return self._header[4]

    @property
    def tail(self):
        return self._header[5]

    @property
    def profiler_addr(self):
        return self._header[6]

    @property
    def multithread(self):
        return bool(self.flags & FLAG_MULTITHREAD)

    @property
    def entry_size(self):
        return self._entry_size

    # ------------------------------------------------------------------
    # Reading

    def __len__(self):
        return self._count

    def chunks(self, chunk_size=None):
        """Yield entries as lists of at most `chunk_size`, in log order."""
        chunk_size = chunk_size or self.chunk_size
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        for start in range(0, self._count, chunk_size):
            yield _decode_entries(
                self._buf,
                self._version,
                start,
                min(chunk_size, self._count - start),
            )

    # `iter_chunks` so SharedLog and LogStream are interchangeable to
    # the analyzer's ingestion loop.
    iter_chunks = chunks

    def __iter__(self):
        for chunk in self.chunks():
            yield from chunk

    def close(self):
        if self._closer is not None:
            self._closer()
            self._closer = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return (
            f"LogStream(entries={self._count}/{self.capacity}, "
            f"version={self._version}, chunk_size={self.chunk_size})"
        )
