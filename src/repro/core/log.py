"""The TEE-Perf log: Figure 2 of the paper, byte for byte.

The log lives in shared memory between the profiled application (inside
the TEE) and the recorder (on the host).  It consists of a 64-byte
header followed by fixed-size 24-byte entries::

    header  (8 x u64)                     entry (3 x u64)
    ------------------------------        -------------------------------
    0  magic ("TEEPERF\\0")               0  kind (bit 63) | counter value
    1  flags | version                    1  call/ret instruction address
    2  shared-memory base address         2  thread id
    3  process id
    4  log size (max entries)
    5  tail index (next free entry)
    6  address of profiler function
    7  seal watermark (sealed logs; else reserved/zero)

Entries are reserved with a fetch-and-add on the tail, so writers never
contend on a lock; reservations past the maximum size are *dropped* and
counted, and the analyzer independently dismisses anything past the
maximum — the paper's rule for records "which might be wrong at the end
of the log".  The real injected code issues one ``lock xadd``; this
reproduction models that atomic with a tail integer whose update is a
two-bytecode critical section, shared by the per-event path
(:meth:`SharedLog.try_reserve`) and the batched path
(:meth:`SharedLog.reserve_block`, which amortises the one atomic over a
whole block of entries — the relaxed reservation of §II-C).

:class:`ThreadLogWriter` is the batched writer built on block
reservation: one per thread, it stages each entry as its packed bytes
and commits each block with a single blit.  Only per-thread ordering
survives — exactly the contract the analyzer needs.

The flags word is the only mutable control surface: bit 0 (ACTIVE)
gates recording and may be flipped while the application runs, which is
how dynamic de-/activation and selective phases work without adding a
critical section to the hot path.

Crash consistency — *sealed segments* (opt-in via
``SharedLog.create(sealed=True)``, flag bit 4): every committed block
may be *sealed*, which records ``(start, count, crc32)`` in a seal
journal and advances the header's monotonic *seal watermark* (word 7)
over the contiguous sealed prefix.  A reader of a crashed snapshot can
then distinguish committed regions (covered by a CRC-verified seal, or
under the watermark) from in-flight ones (reserved but never sealed)
and torn ones (partial trailing bytes).  The journal is persisted as a
trailer after the entry array (``"TPSEAL\\0\\0"`` magic, record count,
then 24-byte ``(start, count, crc)`` records) and parsed tolerantly:
a truncated or garbage trailer never makes a log unreadable — salvage
is :mod:`repro.core.recovery`'s job.  Sealing is off by default so
unsealed images stay byte-for-byte what they always were.

Reading has a columnar fast path: :func:`decode_columns` turns a span
of raw entries into :class:`LogColumns` — one array per field
(kind/counter/addr/tid/call-site), decoded with a single vectorised
``numpy`` view when numpy is available — and :class:`LogEntry` objects
are materialised lazily, only where a consumer asks for them.
"""

import mmap
import os
import struct
import sys
import threading
import zlib
from dataclasses import dataclass

# memoryview.cast only knows native formats; the log is little-endian,
# so the flat word view is valid exactly on little-endian hosts (struct
# keeps big-endian ones correct, just slower).
_NATIVE_WORDS = sys.byteorder == "little"

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in-tree
    _np = None

from repro.core.errors import LogFormatError

MAGIC = int.from_bytes(b"TEEPERF\x00", "little")
HEADER_SIZE = 64
VERSION = 1
# Version 2 extends each entry with the call-site address — the second
# argument the compiler passes to __cyg_profile_func_enter.  The
# header's version field exists exactly so the analyzer can support
# multiple entry layouts (§II-B).
VERSION_2 = 2
ENTRY_SIZE = 24  # version-1 layout
ENTRY_SIZE_V2 = 32
_ENTRY_SIZES = {VERSION: ENTRY_SIZE, VERSION_2: ENTRY_SIZE_V2}

# Flags (low 16 bits of header word 1; the version sits above them).
FLAG_ACTIVE = 1 << 0
FLAG_MULTITHREAD = 1 << 1
# Event mask: which events are measured (both set by default).
FLAG_MASK_CALLS = 1 << 2
FLAG_MASK_RETS = 1 << 3
# Sealed segments: committed blocks carry CRC32 seal records and header
# word 7 is the monotonic seal watermark (see module docstring).
FLAG_SEALED = 1 << 4
# Format rev 1.2: the payload after the header is delta/varint columnar
# blocks (see repro.core.columnar), not a fixed-width entry array.  The
# version field still describes the *entry layout* (v1: 3 words, v2: 4)
# so one flag bit covers both layouts' compressed forms.
FLAG_COMPRESSED = 1 << 5

_VERSION_SHIFT = 16

# Entry word 0: bit 63 is the kind, the low 63 bits the counter value.
KIND_CALL = 0
KIND_RET = 1
_KIND_BIT = 1 << 63
COUNTER_MASK = _KIND_BIT - 1

_HEADER = struct.Struct("<8Q")
_ENTRY = struct.Struct("<3Q")
_ENTRY_V2 = struct.Struct("<4Q")

# The seal journal: a trailer after the entry array.  Header is the
# magic word plus a record count; each record is (start, count, crc32)
# over the raw bytes of entries [start, start + count).
SEAL_MAGIC = int.from_bytes(b"TPSEAL\x00\x00", "little")
_SEAL_HEADER = struct.Struct("<2Q")
_SEAL_RECORD = struct.Struct("<3Q")
SEAL_RECORD_SIZE = _SEAL_RECORD.size


@dataclass(frozen=True)
class SealRecord:
    """One sealed segment: `count` entries at index `start`, with the
    CRC32 of their raw bytes as committed."""

    start: int
    count: int
    crc: int

    @property
    def end(self):
        return self.start + self.count


def _validate_header(buf):
    """Parse and validate the 64-byte header, raising
    :class:`LogFormatError` with byte-offset context on damage."""
    if len(buf) < HEADER_SIZE:
        raise LogFormatError(
            f"log header is truncated: buffer holds {len(buf)} bytes, "
            f"the header needs {HEADER_SIZE} (offset 0)"
        )
    header = _HEADER.unpack_from(buf, 0)
    if header[0] != MAGIC:
        raise LogFormatError(
            f"bad magic at offset 0: 0x{header[0]:016x} "
            f"(expected {bytes(MAGIC.to_bytes(8, 'little'))!r}) — "
            f"not a TEE-Perf log"
        )
    version = (header[1] >> _VERSION_SHIFT) & 0xFFFF
    if version not in _ENTRY_SIZES:
        raise LogFormatError(
            f"unsupported log version {version} in header word 1 "
            f"(offset 8; known versions: {sorted(_ENTRY_SIZES)})"
        )
    return header


def _merge_intervals(intervals):
    """Coalesce (start, end) half-open intervals into a sorted,
    non-overlapping list."""
    merged = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _parse_seal_journal(buf, array_end, capacity):
    """Parse the seal-journal trailer at `array_end`, tolerantly.

    Damage never raises: a missing, truncated or garbage journal
    yields whatever prefix of records still parses and bounds-checks
    (each must describe a non-empty segment inside the entry array).
    Deciding whether a parsed record's CRC still matches the data is
    :mod:`repro.core.recovery`'s job.
    """
    view = memoryview(buf)
    if len(view) < array_end + _SEAL_HEADER.size:
        return []
    magic, count = _SEAL_HEADER.unpack_from(view, array_end)
    if magic != SEAL_MAGIC:
        return []
    fit = (len(view) - array_end - _SEAL_HEADER.size) // SEAL_RECORD_SIZE
    records = []
    offset = array_end + _SEAL_HEADER.size
    for _ in range(min(count, fit)):
        start, n, crc = _SEAL_RECORD.unpack_from(view, offset)
        offset += SEAL_RECORD_SIZE
        if n < 1 or start + n > capacity or crc >> 32:
            break  # garbage record: the rest of the journal is suspect
        records.append(SealRecord(start, n, crc))
    return records

# Entries decoded per ingestion chunk.  8192 v2 entries are 256 KiB of
# raw log — big enough to amortise the struct dispatch, small enough
# that a streaming reader never holds more than a sliver of the log.
DEFAULT_CHUNK_ENTRIES = 8192

# Entries a ThreadLogWriter stages before committing a block: one
# fetch-and-add and one blit per 256 events.
DEFAULT_WRITER_BLOCK = 256

# On-disk logs at or above this size are opened as mmap-backed
# LogStreams by default; smaller ones are cheaper to slurp whole.
DEFAULT_MMAP_THRESHOLD = 1 << 20  # 1 MiB


@dataclass(frozen=True)
class LogEntry:
    """One decoded call/return record."""

    kind: int  # KIND_CALL or KIND_RET
    counter: int  # software-counter value at the event
    addr: int  # runtime address of the entered/exited function
    tid: int  # id of the executing thread
    call_site: int = 0  # v2 logs: runtime address of the call site

    @property
    def is_call(self):
        return self.kind == KIND_CALL

    @property
    def is_ret(self):
        return self.kind == KIND_RET


class LogColumns:
    """A decoded span of the log as structure-of-arrays.

    One sequence per entry field — ``kind``, ``counter``, ``addr``,
    ``tid`` and (v2 only, else ``None``) ``call_site`` — decoded in one
    vectorised sweep.  With numpy the columns are ``uint64`` views cut
    from a single ``frombuffer`` pass; without it they are plain lists
    from one ``iter_unpack`` sweep.  :class:`LogEntry` objects are only
    materialised on demand (:meth:`entries`, iteration), so bulk
    consumers — the analyzer's sharding pass, counters, histograms —
    never pay the per-entry object cost.

    ``start`` is the log index of the first decoded entry, so a
    chunked reader can map columns back to absolute positions.
    """

    __slots__ = ("kind", "counter", "addr", "tid", "call_site", "start")

    def __init__(self, kind, counter, addr, tid, call_site, start=0):
        self.kind = kind
        self.counter = counter
        self.addr = addr
        self.tid = tid
        self.call_site = call_site
        self.start = start

    def __len__(self):
        return len(self.kind)

    def as_lists(self):
        """The columns as plain Python lists (ints), numpy or not.

        ``call_site`` stays ``None`` for v1 spans.
        """
        out = []
        for col in (self.kind, self.counter, self.addr, self.tid,
                    self.call_site):
            if col is None or isinstance(col, list):
                out.append(col)
            else:
                out.append(col.tolist())
        return out

    def as_arrays(self):
        """The columns as numpy ``uint64`` arrays (converting
        list-backed spans); the vector reconstruction engine's input
        shape.  ``call_site`` stays ``None`` for v1 spans.  Raises
        when numpy is unavailable — callers gate on the engine.
        """
        if _np is None:
            raise LogFormatError("as_arrays() requires numpy")
        out = []
        for col in (self.kind, self.counter, self.addr, self.tid,
                    self.call_site):
            if col is None:
                out.append(None)
            else:
                out.append(_np.asarray(col, dtype=_np.uint64))
        return out

    def counter_bounds(self):
        """(min, max) counter value in the span; ``None`` when empty."""
        if not len(self.kind):
            return None
        counter = self.counter
        if isinstance(counter, list):
            return min(counter), max(counter)
        return int(counter.min()), int(counter.max())

    def entries(self):
        """Materialise the span as :class:`LogEntry` objects."""
        kind, counter, addr, tid, call_site = self.as_lists()
        if call_site is None:
            return [
                LogEntry(k, c, a, t)
                for k, c, a, t in zip(kind, counter, addr, tid)
            ]
        return [
            LogEntry(k, c, a, t, s)
            for k, c, a, t, s in zip(kind, counter, addr, tid, call_site)
        ]

    def __iter__(self):
        return iter(self.entries())


def decode_columns(buf, version, start, count, copy=False):
    """Decode `count` consecutive entries at index `start` into columns.

    The bulk read path shared by :meth:`SharedLog.iter_column_chunks`
    and :meth:`LogStream.column_chunks`: one ``numpy.frombuffer`` view
    reshaped to (count, words) and sliced per field — no per-entry
    Python work at all.  Falls back to a single ``iter_unpack`` sweep
    when numpy is unavailable.

    With ``copy=True`` the columns are materialised (one vectorised
    memcpy) instead of viewing `buf` — required when `buf` must stay
    closeable, e.g. an ``mmap`` held by a :class:`LogStream`.
    """
    entry_size = _ENTRY_SIZES[version]
    offset = HEADER_SIZE + start * entry_size
    view = memoryview(buf)[offset : offset + count * entry_size]
    if _np is not None:
        words = entry_size // 8
        mat = _np.frombuffer(view, dtype="<u8").reshape(count, words)
        if copy:
            mat = mat.copy()
            view.release()
        word0 = mat[:, 0]
        kind = (word0 >> _np.uint64(63)).astype(_np.uint64)
        counter = word0 & _np.uint64(COUNTER_MASK)
        call_site = mat[:, 3] if words == 4 else None
        return LogColumns(kind, counter, mat[:, 1], mat[:, 2],
                          call_site, start)
    kind, counter, addr, tid = [], [], [], []
    call_site = [] if entry_size == ENTRY_SIZE_V2 else None
    unpacker = _ENTRY_V2 if entry_size == ENTRY_SIZE_V2 else _ENTRY
    for fields in unpacker.iter_unpack(view):
        word0 = fields[0]
        kind.append(KIND_RET if word0 & _KIND_BIT else KIND_CALL)
        counter.append(word0 & COUNTER_MASK)
        addr.append(fields[1])
        tid.append(fields[2])
        if call_site is not None:
            call_site.append(fields[3])
    return LogColumns(kind, counter, addr, tid, call_site, start)


def _decode_entries(buf, version, start, count):
    """Decode `count` consecutive entries beginning at index `start`.

    Object materialisation over the columnar fast path — kept for the
    consumers that genuinely want :class:`LogEntry` objects
    (:meth:`SharedLog.iter_chunks`, :class:`LogStream` iteration).
    """
    return decode_columns(buf, version, start, count).entries()


class SharedLog:
    """The shared-memory log: header + append-only entry array.

    The buffer is a plain ``bytearray`` by default; in live mode real
    threads append concurrently (reservation is GIL-atomic), in
    simulated mode the machine serialises writers anyway.  ``capacity``
    is the maximum number of entries, fixed at creation exactly as in
    the paper.  With ``SharedLog.create(..., shm=True)`` the buffer is
    a true ``multiprocessing.shared_memory`` segment instead: another
    process can :meth:`attach` by name and read (or append to) the very
    same bytes — the fleet's producer fast path hands segments over
    without ever serialising them.  :meth:`view` wraps an existing
    image (bytes, a memoryview, an mmap) *without copying*; such a log
    is read-only, which is all salvage and analysis need.
    """

    def __init__(self, buf, shm=None):
        header = _validate_header(buf)
        if header[1] & FLAG_COMPRESSED:
            raise LogFormatError(
                "compressed (rev 1.2) image: the payload is columnar "
                "blocks, not a fixed-width entry array — open it with "
                "repro.core.columnar.ColumnarLog (open_log() dispatches "
                "automatically)"
            )
        self._buf = buf
        self._shm = shm
        version = (header[1] >> _VERSION_SHIFT) & 0xFFFF
        self._entry_size = _ENTRY_SIZES[version]
        self._capacity = header[4]
        # Where the entry array ends (and a seal journal, if any,
        # begins).  A truncated image may stop short of it; complete
        # entries actually present clip every read path so a damaged
        # file never turns into a bare struct/ValueError mid-decode.
        self._array_end = min(
            len(buf), HEADER_SIZE + self._capacity * self._entry_size
        )
        self._present = (self._array_end - HEADER_SIZE) // self._entry_size
        self._seals = (
            _parse_seal_journal(buf, self._array_end, self._capacity)
            if header[1] & FLAG_SEALED
            else []
        )
        self._sealed_intervals = _merge_intervals(
            (r.start, r.end) for r in self._seals
        )
        # Header words as a flat u64 view: flags/tail reads on the hot
        # path cost one index, not a struct unpack.
        self._words = (
            memoryview(buf)[: (len(buf) // 8) * 8].cast("Q")
            if _NATIVE_WORDS
            else None
        )
        # Mirrors of the flags word: batched writers poll these per
        # staged event, and a plain list index is measurably cheaper
        # than a memoryview index (or any bit arithmetic) on that path.
        # _measures_mirror holds the pre-shifted event-mask bits —
        # ``mirror[kind]`` is truthy iff the mask admits that kind.
        # Both kept in sync by _set_word.
        self._flags_mirror = [header[1]]
        self._measures_mirror = [
            header[1] & FLAG_MASK_CALLS,
            header[1] & FLAG_MASK_RETS,
        ]
        # The tail: the paper's single atomic fetch-and-add, modelled
        # by an integer bumped inside a two-bytecode critical section
        # (shared by per-event and block reservation, so blocks stay
        # contiguous under concurrency).
        self._tail_lock = threading.Lock()
        self._next_free = self.tail
        self.dropped = 0

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def create(
        cls,
        capacity,
        pid=0,
        profiler_addr=0,
        shm_base=0x7F00_0000_0000,
        multithread=True,
        version=VERSION,
        sealed=False,
        shm=False,
        shm_name=None,
    ):
        """Allocate and initialise a log for `capacity` entries.

        ``sealed=True`` enables crash-consistent sealed segments:
        batched writers seal each committed block, the recorder seals
        the remainder at stop, and the image gains a CRC journal
        trailer.  Off by default — unsealed images stay byte-identical
        to what every earlier reader expects.

        ``shm=True`` backs the log with a real
        ``multiprocessing.shared_memory`` segment instead of a private
        ``bytearray``: another process can :meth:`attach` by the
        segment's :attr:`shm_name` and read the same bytes with zero
        serialisation.  Call :meth:`close` (``unlink=True`` in the
        owning process) when done.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        if version not in _ENTRY_SIZES:
            raise ValueError(
                f"unsupported version {version} (known: "
                f"{sorted(_ENTRY_SIZES)})"
            )
        size = HEADER_SIZE + capacity * _ENTRY_SIZES[version]
        seg = None
        if shm:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(
                name=shm_name, create=True, size=size
            )
            # The OS may round the segment up to a page; the log is
            # exactly the bytes it asked for.  New segments are
            # zero-filled, which a fresh log relies on.
            buf = memoryview(seg.buf)[:size]
        else:
            buf = bytearray(size)
        flags = FLAG_MASK_CALLS | FLAG_MASK_RETS
        if multithread:
            flags |= FLAG_MULTITHREAD
        if sealed:
            flags |= FLAG_SEALED
        _HEADER.pack_into(
            buf,
            0,
            MAGIC,
            flags | (version << _VERSION_SHIFT),
            shm_base,
            pid,
            capacity,
            0,  # tail
            profiler_addr,
            0,  # seal watermark
        )
        return cls(buf, shm=seg)

    @classmethod
    def from_bytes(cls, data):
        """Wrap an existing log image (e.g. read back from disk)."""
        return cls(bytearray(data))

    @classmethod
    def view(cls, data):
        """Wrap an existing image **without copying** it.

        `data` may be ``bytes``, a ``memoryview`` (e.g. over a shared
        -memory segment), an ``mmap`` — anything with the buffer
        protocol.  The resulting log is read-only unless the
        underlying buffer is writable; salvage and analysis, which
        only read, use this to avoid materialising a second copy of
        a large image.
        """
        return cls(data)

    @classmethod
    def attach(cls, name):
        """Attach to a log living in a named shared-memory segment
        (the other half of ``create(shm=True)``).

        The attached log reads — and can append to — the creating
        process's bytes directly.  Call :meth:`close` (without
        ``unlink``) when done.
        """
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(name=name)
        header = _validate_header(seg.buf)
        version = (header[1] >> _VERSION_SHIFT) & 0xFFFF
        size = HEADER_SIZE + header[4] * _ENTRY_SIZES[version]
        buf = memoryview(seg.buf)[: min(size, len(seg.buf))]
        return cls(buf, shm=seg)

    @property
    def shm_name(self):
        """The shared-memory segment's name (None for private logs)."""
        return self._shm.name if self._shm is not None else None

    def close(self, unlink=False):
        """Release a shared-memory backing (no-op for private logs).

        The owning process passes ``unlink=True`` to also remove the
        segment; attachers close without unlinking.  The log must not
        be used after close.
        """
        seg = self._shm
        if seg is None:
            return
        self._shm = None
        if self._words is not None:
            self._words.release()
            self._words = None
        if isinstance(self._buf, memoryview):
            self._buf.release()
        self._buf = b""
        try:
            seg.close()
        except BufferError:  # an exported view still pins the buffer
            pass
        if unlink:
            try:
                seg.unlink()
            except FileNotFoundError:
                pass

    @classmethod
    def load(cls, path):
        """Read a persisted log file."""
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())

    def dump(self, path):
        """Persist the log (what the recorder wrapper does after a run)."""
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())

    def to_bytes(self):
        """The full log image, header synchronised.

        Sealed logs append the seal-journal trailer after the entry
        array; unsealed images are byte-identical to what they always
        were.
        """
        self._store_tail()
        if not self.sealed:
            return bytes(self._buf)
        return bytes(self._buf[: self._array_end]) + self._journal_bytes()

    def _journal_bytes(self):
        """The seal journal serialised as the image trailer."""
        seals = self._seals
        parts = [_SEAL_HEADER.pack(SEAL_MAGIC, len(seals))]
        parts.extend(
            _SEAL_RECORD.pack(r.start, r.count, r.crc) for r in seals
        )
        return b"".join(parts)

    # ------------------------------------------------------------------
    # Header accessors

    def _word(self, index):
        if self._words is not None:
            return self._words[index]
        return struct.unpack_from("<Q", self._buf, index * 8)[0]

    def _set_word(self, index, value):
        if self._words is not None:
            self._words[index] = value
        else:
            struct.pack_into("<Q", self._buf, index * 8, value)
        if index == 1:
            self._flags_mirror[0] = value
            mirror = self._measures_mirror
            mirror[0] = value & FLAG_MASK_CALLS
            mirror[1] = value & FLAG_MASK_RETS

    @property
    def flags(self):
        return self._word(1) & 0xFFFF

    @property
    def version(self):
        return (self._word(1) >> _VERSION_SHIFT) & 0xFFFF

    @property
    def shm_base(self):
        return self._word(2)

    @property
    def pid(self):
        return self._word(3)

    @property
    def capacity(self):
        return self._capacity

    @property
    def tail(self):
        return self._word(5)

    @property
    def profiler_addr(self):
        return self._word(6)

    def set_profiler_addr(self, addr):
        """The recorder stores the well-known function address here."""
        self._set_word(6, addr)

    def set_pid(self, pid):
        self._set_word(3, pid)

    @property
    def active(self):
        return bool(self.flags & FLAG_ACTIVE)

    def set_active(self, active):
        """Flip the ACTIVE flag (atomic on real hardware; here the GIL
        plays that role).  Safe to call while the application runs."""
        word = self._word(1)
        if active:
            word |= FLAG_ACTIVE
        else:
            word &= ~FLAG_ACTIVE
        self._set_word(1, word)

    @property
    def multithread(self):
        return bool(self.flags & FLAG_MULTITHREAD)

    @property
    def entry_size(self):
        return self._entry_size

    def measures(self, kind):
        """Whether the event mask admits this event kind."""
        flag = FLAG_MASK_CALLS if kind == KIND_CALL else FLAG_MASK_RETS
        return bool(self.flags & flag)

    def set_event_mask(self, calls=True, rets=True):
        """Choose which events are measured — changeable while the
        application runs, like the ACTIVE flag (§II-B)."""
        word = self._word(1)
        word &= ~(FLAG_MASK_CALLS | FLAG_MASK_RETS)
        if calls:
            word |= FLAG_MASK_CALLS
        if rets:
            word |= FLAG_MASK_RETS
        self._set_word(1, word)

    # ------------------------------------------------------------------
    # Sealing (crash consistency)

    @property
    def sealed(self):
        """Whether this log records sealed segments (flag bit 4)."""
        return bool(self.flags & FLAG_SEALED)

    @property
    def seals(self):
        """The seal journal: :class:`SealRecord` per sealed segment."""
        return list(self._seals)

    @property
    def seal_watermark(self):
        """Entries in the contiguous sealed prefix (header word 7).

        Monotonic: a reader may treat entries below the watermark as
        committed without consulting the journal, even when a crash
        (or a truncation that ate the trailer) lost the CRC records.
        """
        return self._word(7)

    def _crc_block(self, start, count):
        offset = HEADER_SIZE + start * self._entry_size
        span = count * self._entry_size
        return zlib.crc32(memoryview(self._buf)[offset : offset + span])

    def seal(self, start, count):
        """Seal `count` committed entries at index `start`.

        Records their CRC32 in the journal and advances the watermark
        if the contiguous sealed prefix grew.  Returns the new
        :class:`SealRecord`.
        """
        if not self.sealed:
            raise LogFormatError(
                "seal() on a log created without sealed=True"
            )
        if count < 1 or start < 0 or start + count > self._capacity:
            raise ValueError(
                f"seal [{start}, {start + count}) outside the entry "
                f"array [0, {self._capacity})"
            )
        record = SealRecord(start, count, self._crc_block(start, count))
        self._seals.append(record)
        self._sealed_intervals = _merge_intervals(
            self._sealed_intervals + [(start, record.end)]
        )
        first = self._sealed_intervals[0]
        if first[0] == 0 and first[1] > self._word(7):
            self._set_word(7, first[1])
        return record

    def seal_remainder(self):
        """Seal every committed-but-unsealed gap in ``[0, entries)``.

        The recorder's stop/pause hook: per-event appends never seal
        on the hot path, so one call here leaves a cleanly finished
        log fully sealed — and a crashed run, which never gets here,
        leaves its in-flight regions unsealed for recovery to
        quarantine.  Returns the number of new seal records.
        """
        end = len(self)
        gaps = []
        cursor = 0
        for s, e in self._sealed_intervals:
            if cursor < min(s, end):
                gaps.append((cursor, min(s, end)))
            cursor = max(cursor, e)
        if cursor < end:
            gaps.append((cursor, end))
        for s, e in gaps:
            self.seal(s, e - s)
        return len(gaps)

    # ------------------------------------------------------------------
    # Appending (the injected code's hot path)

    def try_reserve(self):
        """Fetch-and-add on the tail; ``None`` once the log is full."""
        with self._tail_lock:
            index = self._next_free
            self._next_free = index + 1
        if index >= self._capacity:
            self.dropped += 1
            return None
        return index

    def reserve_block(self, n):
        """One fetch-and-add reserves `n` consecutive slots.

        Returns ``(start, granted)``: the first reserved index and how
        many of the `n` slots actually exist.  When the block straddles
        the capacity boundary ``granted < n`` — the tail of the block
        was reserved past the end and is *surrendered*: those slots
        were never writable, and the caller owns counting whatever
        events they would have carried as dropped
        (:class:`ThreadLogWriter` does exactly that at flush).  A block
        reserved entirely past capacity returns ``granted == 0``.

        Unlike :meth:`try_reserve`, this method does not touch
        :attr:`dropped` itself: a block is reserved *per flush*, not
        per event, so only the caller knows how many events the
        surrendered slots represent.
        """
        if n < 1:
            raise ValueError(f"block size must be positive: {n}")
        with self._tail_lock:
            start = self._next_free
            self._next_free = start + n
        if start >= self._capacity:
            return start, 0
        return start, min(n, self._capacity - start)

    def write_block(self, start, granted, raw):
        """Blit `granted` pre-packed entries into slots
        ``[start, start + granted)`` — the commit half of
        :meth:`reserve_block`.  `raw` must hold at least
        ``granted * entry_size`` bytes in the log's entry layout."""
        if not granted:
            return
        entry_size = self._entry_size
        offset = HEADER_SIZE + start * entry_size
        span = granted * entry_size
        self._buf[offset : offset + span] = raw[:span]

    def write_entry(self, index, kind, counter, addr, tid, call_site=0):
        """Fill a previously reserved slot."""
        word0 = (counter & COUNTER_MASK) | (_KIND_BIT if kind else 0)
        offset = HEADER_SIZE + index * self._entry_size
        if self._entry_size == ENTRY_SIZE_V2:
            _ENTRY_V2.pack_into(
                self._buf, offset, word0, addr, tid, call_site
            )
        else:
            _ENTRY.pack_into(self._buf, offset, word0, addr, tid)

    def append(self, kind, counter, addr, tid, call_site=0):
        """Reserve and write in one step; False when the log was full
        or the event mask filters this kind out."""
        if not self.measures(kind):
            return False
        index = self.try_reserve()
        if index is None:
            return False
        self.write_entry(index, kind, counter, addr, tid, call_site)
        return True

    def append_columns(self, kind, counter, addr, tid, call_site=None):
        """Bulk vectorised append: one reserved block for the whole
        batch, packed straight into the log buffer.

        The zero-copy counterpart of :meth:`append` for producers that
        already hold their events as columns (arrays or lists of
        kind/counter/addr/tid, plus ``call_site`` for v2 logs): the
        event mask filters rows first, one
        :meth:`reserve_block` fetch-and-add covers the batch, and the
        columns are written through a writable ``numpy`` view of the
        reserved slots — no per-event Python work, no intermediate
        packed ``bytes``.  Rows lost past the capacity boundary are
        counted on :attr:`dropped`.  Returns the number of entries
        committed.  Without numpy the batch degrades to per-event
        appends (same bytes, same accounting).
        """
        if _np is None:
            committed = 0
            for i in range(len(kind)):
                if self.append(
                    kind[i], counter[i], addr[i], tid[i],
                    call_site[i] if call_site is not None else 0,
                ):
                    committed += 1
            return committed
        u64 = _np.uint64
        kind = _np.ascontiguousarray(kind, dtype=u64)
        counter = _np.ascontiguousarray(counter, dtype=u64)
        addr = _np.ascontiguousarray(addr, dtype=u64)
        tid = _np.ascontiguousarray(tid, dtype=u64)
        if call_site is not None:
            call_site = _np.ascontiguousarray(call_site, dtype=u64)
        flags = self._flags_mirror[0]
        if not (flags & FLAG_MASK_CALLS) or not (flags & FLAG_MASK_RETS):
            keep = _np.zeros(len(kind), dtype=bool)
            if flags & FLAG_MASK_CALLS:
                keep |= kind == KIND_CALL
            if flags & FLAG_MASK_RETS:
                keep |= kind == KIND_RET
            kind, counter = kind[keep], counter[keep]
            addr, tid = addr[keep], tid[keep]
            if call_site is not None:
                call_site = call_site[keep]
        n = len(kind)
        if not n:
            return 0
        start, granted = self.reserve_block(n)
        surrendered = n - granted
        if surrendered:
            self.dropped += surrendered
        if not granted:
            return 0
        entry_size = self._entry_size
        words = entry_size // 8
        offset = HEADER_SIZE + start * entry_size
        mat = _np.frombuffer(
            memoryview(self._buf)[offset : offset + granted * entry_size],
            dtype="<u8",
        ).reshape(granted, words)
        mat[:, 0] = (counter[:granted] & u64(COUNTER_MASK)) | (
            kind[:granted] << u64(63)
        )
        mat[:, 1] = addr[:granted]
        mat[:, 2] = tid[:granted]
        if words == 4:
            mat[:, 3] = 0 if call_site is None else call_site[:granted]
        if self.sealed:
            self.seal(start, granted)
        return granted

    # ------------------------------------------------------------------
    # Reading (the analyzer's side)

    def __len__(self):
        return self._readable()

    def _readable(self):
        """Complete entries a reader may decode: the live tail,
        clipped by capacity (the dismissal rule) and by the complete
        entries actually present in the buffer (a truncated or
        mid-write image may be short of its own tail)."""
        return min(self.tail_or_live(), self._capacity, self._present)

    def tail_or_live(self):
        """Entries written: live reservation counter or stored tail,
        whichever has advanced further."""
        return max(self._next_free, self.tail)

    def entry(self, index):
        """Decode entry `index` (layout chosen by the header version)."""
        if index >= self._readable():
            raise IndexError(f"entry {index} past end of log")
        offset = HEADER_SIZE + index * self._entry_size
        call_site = 0
        if self._entry_size == ENTRY_SIZE_V2:
            word0, addr, tid, call_site = _ENTRY_V2.unpack_from(
                self._buf, offset
            )
        else:
            word0, addr, tid = _ENTRY.unpack_from(self._buf, offset)
        kind = KIND_RET if word0 & _KIND_BIT else KIND_CALL
        return LogEntry(kind, word0 & COUNTER_MASK, addr, tid, call_site)

    def __iter__(self):
        for index in range(self._readable()):
            yield self.entry(index)

    def iter_chunks(self, chunk_size=DEFAULT_CHUNK_ENTRIES):
        """Yield entries as lists of at most `chunk_size`, in log order.

        The streaming analyzer's ingestion path: decoding happens one
        chunk at a time (bulk ``iter_unpack``), so a consumer never
        holds more than `chunk_size` decoded entries per chunk.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        total = self._readable()
        for start in range(0, total, chunk_size):
            yield _decode_entries(
                self._buf, self.version, start, min(chunk_size, total - start)
            )

    def iter_column_chunks(self, chunk_size=DEFAULT_CHUNK_ENTRIES):
        """Yield :class:`LogColumns` spans of at most `chunk_size`.

        The analyzer's bulk-ingestion path: no :class:`LogEntry`
        objects are built — each span is one vectorised decode.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        total = self._readable()
        for start in range(0, total, chunk_size):
            yield decode_columns(
                self._buf, self.version, start, min(chunk_size, total - start)
            )

    def columns(self):
        """The whole log decoded as one :class:`LogColumns` span."""
        return decode_columns(self._buf, self.version, 0, self._readable())

    def _store_tail(self):
        # tail_or_live, not _next_free: an attached reader whose
        # reservation counter was snapshotted before the owner stored
        # its tail must never regress the shared header word.  The
        # equality guard skips the no-op store, so a read-only view
        # (SharedLog.view over bytes or foreign shared memory) — which
        # never appended — needs no writable buffer.
        value = min(self.tail_or_live(), self._capacity)
        if value != self._word(5):
            self._set_word(5, value)

    def __repr__(self):
        return (
            f"SharedLog(entries={len(self)}/{self._capacity}, "
            f"active={self.active}, dropped={self.dropped})"
        )


class ThreadLogWriter:
    """A per-thread batched writer over one :class:`SharedLog`.

    The injected code's amortised hot path: :attr:`append` — a closure
    specialised at construction so every per-event load is a cell
    variable or a default-argument constant, never an attribute chain —
    packs each entry **in place** into a staging buffer preallocated
    once at construction (one C-level ``Struct.pack_into``; the
    per-event path allocates *nothing*), and each `block` of entries
    commits with one :meth:`SharedLog.reserve_block` fetch-and-add
    plus a single slice copy of the staging buffer into the shared
    buffer — no per-event ``bytes`` objects, no ``b"".join`` at
    commit.  :meth:`extend` is the bulk sibling: a whole column batch
    flushes the stage and lands through
    :meth:`SharedLog.append_columns` as one vectorised block.

    The contract, matching ``docs/log-format.md``:

    * **one writer per thread** — the staging buffer is not shared, so
      per-thread event order is preserved exactly; global interleaving
      becomes per-block, which is within the format's "only per-thread
      order is meaningful" rule;
    * ``ACTIVE`` and the event mask are honoured *at staging time*
      (the hooks check ACTIVE, :attr:`append` checks the mask): a flag
      flipped between a block's staging and its flush affects later
      events only, and already-staged events are always committed;
    * drop accounting is exact but deferred: events staged into a
      block whose reservation straddles (or lies past) the capacity
      boundary are counted on :attr:`dropped` — and added to the log's
      own counter — at flush, when the surrendered tail slots are
      known.

    Call :meth:`flush` (or :meth:`close`, or leave a ``with`` block)
    when the thread is done so the final partial block commits.
    """

    __slots__ = (
        "log",
        "block",
        "flushed",
        "dropped",
        "blocks_flushed",
        "append",
        "_flush_impl",
        "_pending_impl",
        "_staged_bytes",
        "_clear_staged",
    )

    def __init__(self, log, block=DEFAULT_WRITER_BLOCK):
        if block < 1:
            raise ValueError(f"block size must be positive: {block}")
        self.log = log
        self.block = block
        self.flushed = 0  # entries committed to the log
        self.dropped = 0  # staged events lost to surrendered slots
        self.blocks_flushed = 0
        entry_size = log.entry_size
        # The staging buffer: `block` entries' worth of bytes,
        # allocated exactly once.  `pos` — the byte offset of the next
        # free staging slot — lives in a closure cell shared by the
        # append/flush/pending closures below; packing writes the
        # entry's final bytes straight into `stage`, so the per-event
        # path performs zero allocations and flush is one slice copy.
        stage = bytearray(block * entry_size)
        stage_view = memoryview(stage)
        pos = 0
        writer = self

        def flush_impl():
            """Commit the staged entries as one reserved block."""
            nonlocal pos
            if not pos:
                return 0
            count = pos // entry_size
            start, granted = log.reserve_block(count)
            if granted:
                # One slice copy: staging bytes -> reserved slots.
                log.write_block(start, granted, stage_view)
                if log.sealed:
                    log.seal(start, granted)
                writer.flushed += granted
            pos = 0
            surrendered = count - granted
            if surrendered:
                writer.dropped += surrendered
                log.dropped += surrendered
            writer.blocks_flushed += 1
            return granted

        # The staging closure.  Every name it touches per event is a
        # cell variable or a default-arg constant; the mask check is a
        # single index into the log's *measures mirror* (a two-slot
        # list of pre-shifted mask bits, kept current by _set_word) —
        # KIND_CALL is 0, KIND_RET is 1.  `pos` doubles as the
        # block-full test: it hits `_cap` exactly when `block` events
        # have been staged since the last flush (an external flush only
        # makes the next block smaller, which the format permits —
        # block boundaries carry no meaning).  The block-full commit
        # goes through the *bound* flush so subclasses that override
        # it (fault injection) stay in the loop.
        meas = log._measures_mirror
        flush = self.flush
        if entry_size == ENTRY_SIZE_V2:

            def append(kind, counter, addr, tid, call_site=0,
                       _mask=COUNTER_MASK, _kbit=_KIND_BIT,
                       _stage=stage, _pack=_ENTRY_V2.pack_into,
                       _es=entry_size, _cap=block * entry_size):
                """Stage one event in place; False when the mask
                filters it out.  True means *accepted* — commitment
                (or a capacity drop) happens at flush."""
                nonlocal pos
                if not meas[kind]:
                    return False
                _pack(_stage, pos, counter & _mask | (kind and _kbit),
                      addr, tid, call_site)
                pos += _es
                if pos == _cap:
                    flush()
                return True

        else:

            def append(kind, counter, addr, tid, call_site=0,
                       _mask=COUNTER_MASK, _kbit=_KIND_BIT,
                       _stage=stage, _pack=_ENTRY.pack_into,
                       _es=entry_size, _cap=block * entry_size):
                """Stage one event in place; False when the mask
                filters it out.  True means *accepted* — commitment
                (or a capacity drop) happens at flush."""
                nonlocal pos
                if not meas[kind]:
                    return False
                _pack(_stage, pos, counter & _mask | (kind and _kbit),
                      addr, tid)
                pos += _es
                if pos == _cap:
                    flush()
                return True

        def staged_bytes():
            """The staged-but-uncommitted prefix of the staging buffer
            (a view, not a copy) — fault injection reads this to model
            a writer dying mid-commit."""
            return stage_view[:pos]

        def clear_staged():
            nonlocal pos
            pos = 0

        self.append = append
        self._flush_impl = flush_impl
        self._pending_impl = lambda: pos // entry_size
        self._staged_bytes = staged_bytes
        self._clear_staged = clear_staged

    @property
    def pending(self):
        """Entries staged but not yet committed."""
        return self._pending_impl()

    def flush(self):
        """Commit the staged entries as one reserved block.

        Returns the number of entries committed; the difference to
        what was staged is the exact count of events dropped because
        their slots were surrendered past the capacity boundary.
        """
        return self._flush_impl()

    def extend(self, kind, counter, addr, tid, call_site=None):
        """Bulk append a column batch through this writer.

        Staged per-event entries flush first (preserving per-thread
        order), then the whole batch lands through
        :meth:`SharedLog.append_columns` as one vectorised block.
        Returns the number of entries committed; mask-filtered rows
        are skipped and capacity-surrendered rows counted on
        :attr:`dropped`, exactly like the per-event path.
        """
        self._flush_impl()
        log = self.log
        before = log.dropped
        committed = log.append_columns(kind, counter, addr, tid, call_site)
        self.flushed += committed
        self.dropped += log.dropped - before
        self.blocks_flushed += 1
        return committed

    def close(self):
        self.flush()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.flush()
        return False

    def __repr__(self):
        return (
            f"ThreadLogWriter(block={self.block}, "
            f"pending={self.pending}, "
            f"flushed={self.flushed}, dropped={self.dropped})"
        )


def is_compressed_image(data):
    """True when a bytes-like image carries rev 1.2 compressed
    columnar payload (valid magic and ``FLAG_COMPRESSED`` set)."""
    if len(data) < 16:
        return False
    magic, word1 = struct.unpack_from("<2Q", data, 0)
    return magic == MAGIC and bool(word1 & FLAG_COMPRESSED)


def open_log(path, mmap_threshold=DEFAULT_MMAP_THRESHOLD,
             chunk_size=DEFAULT_CHUNK_ENTRIES):
    """Open a persisted log read-optimally for its size.

    Files at or above `mmap_threshold` bytes come back as a
    mmap-backed :class:`LogStream` (the kernel pages entries in as
    they are decoded — nothing is slurped); smaller files are loaded
    whole as a :class:`SharedLog`, which is cheaper than a mapping for
    logs that fit comfortably in memory.  Pass ``mmap_threshold=0`` to
    always stream, or ``float("inf")`` to always load.

    Compressed rev 1.2 images (``FLAG_COMPRESSED``) dispatch to a
    :class:`repro.core.columnar.ColumnarLog`, which exposes the same
    read surface — consumers never notice the format.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        size = 0
    if size >= 16:
        with open(path, "rb") as fh:
            head = fh.read(16)
        if is_compressed_image(head):
            from repro.core.columnar import ColumnarLog

            return ColumnarLog.open(path, chunk_size)
    if size >= mmap_threshold:
        return LogStream.open(path, chunk_size)
    return SharedLog.load(path)


class LogStream:
    """A read-only, chunked view of a persisted log.

    Where :class:`SharedLog` materialises the whole image in a
    ``bytearray``, a stream parses the 64-byte header eagerly and
    decodes entries lazily in fixed-size chunks, so the analyzer can
    keep up with logs far larger than memory: :meth:`open` maps the
    file with ``mmap`` (the kernel pages the log in and out as chunks
    are decoded) and :meth:`chunks` never holds more than one decoded
    chunk at a time.

    Header accessors mirror :class:`SharedLog`; the write side does
    not exist here by design.
    """

    def __init__(self, buf, chunk_size=DEFAULT_CHUNK_ENTRIES, closer=None):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        header = _validate_header(buf)
        if header[1] & FLAG_COMPRESSED:
            raise LogFormatError(
                "compressed (rev 1.2) image: use "
                "repro.core.columnar.ColumnarLog (open_log() "
                "dispatches automatically)"
            )
        version = (header[1] >> _VERSION_SHIFT) & 0xFFFF
        self._buf = buf
        self._header = header
        self._version = version
        self._entry_size = _ENTRY_SIZES[version]
        self.chunk_size = chunk_size
        self._closer = closer
        # Entries available: the stored tail, clipped by capacity (the
        # analyzer's dismissal rule) and by the bytes actually present
        # (a snapshot taken mid-write may be short).
        in_buffer = (len(buf) - HEADER_SIZE) // self._entry_size
        self._count = min(header[5], header[4], in_buffer)
        array_end = min(
            len(buf), HEADER_SIZE + header[4] * self._entry_size
        )
        self._seals = (
            _parse_seal_journal(buf, array_end, header[4])
            if header[1] & FLAG_SEALED
            else []
        )

    @classmethod
    def open(cls, path, chunk_size=DEFAULT_CHUNK_ENTRIES):
        """Stream a persisted log file through an ``mmap`` mapping.

        Falls back to reading the file into memory where mapping is
        impossible (empty file, exotic filesystem).
        """
        fh = open(path, "rb")
        try:
            buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            data = fh.read()
            fh.close()
            return cls(data, chunk_size)
        return cls(buf, chunk_size, closer=lambda: (buf.close(), fh.close()))

    # ------------------------------------------------------------------
    # Header accessors (the SharedLog subset a reader needs)

    @property
    def version(self):
        return self._version

    @property
    def flags(self):
        return self._header[1] & 0xFFFF

    @property
    def shm_base(self):
        return self._header[2]

    @property
    def pid(self):
        return self._header[3]

    @property
    def capacity(self):
        return self._header[4]

    @property
    def tail(self):
        return self._header[5]

    @property
    def profiler_addr(self):
        return self._header[6]

    @property
    def multithread(self):
        return bool(self.flags & FLAG_MULTITHREAD)

    @property
    def active(self):
        return bool(self.flags & FLAG_ACTIVE)

    @property
    def entry_size(self):
        return self._entry_size

    @property
    def sealed(self):
        return bool(self.flags & FLAG_SEALED)

    @property
    def seals(self):
        """The seal journal parsed from the image trailer."""
        return list(self._seals)

    @property
    def seal_watermark(self):
        return self._header[7]

    # ------------------------------------------------------------------
    # Reading

    def __len__(self):
        return self._count

    def chunks(self, chunk_size=None):
        """Yield entries as lists of at most `chunk_size`, in log order."""
        chunk_size = chunk_size or self.chunk_size
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        for start in range(0, self._count, chunk_size):
            yield _decode_entries(
                self._buf,
                self._version,
                start,
                min(chunk_size, self._count - start),
            )

    # `iter_chunks` so SharedLog and LogStream are interchangeable to
    # the analyzer's ingestion loop.
    iter_chunks = chunks

    def column_chunks(self, chunk_size=None):
        """Yield :class:`LogColumns` spans of at most `chunk_size` —
        the vectorised counterpart of :meth:`chunks`."""
        chunk_size = chunk_size or self.chunk_size
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        for start in range(0, self._count, chunk_size):
            # copy=True: the columns must not pin the mmap — callers may
            # hold them (analyzer shards do) after the stream closes.
            yield decode_columns(
                self._buf,
                self._version,
                start,
                min(chunk_size, self._count - start),
                copy=True,
            )

    # Interchangeable with SharedLog for the analyzer's column path.
    iter_column_chunks = column_chunks

    def columns(self):
        """The whole stream decoded as one :class:`LogColumns` span."""
        return decode_columns(self._buf, self._version, 0, self._count, copy=True)

    def __iter__(self):
        for chunk in self.chunks():
            yield from chunk

    def close(self):
        if self._closer is not None:
            self._closer()
            self._closer = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return (
            f"LogStream(entries={self._count}/{self.capacity}, "
            f"version={self._version}, chunk_size={self.chunk_size})"
        )
