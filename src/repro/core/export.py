"""Export the analysis into other tools' formats.

The paper expects that "other tooling support for visualization should
be similarly easy to port" (§III) — the analyzer already has everything
a visualiser needs.  This module proves the point with four writers:

* :func:`to_gprof` — GNU gprof's flat profile and call graph (the
  related-work baseline the paper compares against conceptually);
* :func:`to_callgrind` — the callgrind format consumed by
  KCachegrind/QCachegrind;
* :func:`to_speedscope` — speedscope.app's "evented" JSON, preserving
  the exact per-thread event timeline;
* :func:`to_json` — a plain machine-readable dump of the aggregates,
  including the pipeline counters when the analysis carries them;
* :func:`to_metrics` — Prometheus-style exposition text of the
  pipeline and profile counters (the TEEMon-style scrape surface).
"""

import json


def _edges(analysis):
    """(caller, callee) -> [calls, inclusive_ticks] over all records."""
    edges = {}
    for record in analysis.records:
        key = (record.caller, record.method)
        slot = edges.setdefault(key, [0, 0])
        slot[0] += 1
        slot[1] += record.inclusive
    return edges


def to_gprof(analysis, top=40):
    """gprof-style output: flat profile, then the call graph."""
    total = analysis.total_exclusive() or 1
    lines = [
        "Flat profile:",
        "",
        f"{'% time':>7} {'self':>12} {'calls':>9} "
        f"{'self/call':>12}  name",
    ]
    for stats in analysis.methods()[:top]:
        per_call = stats.exclusive / stats.calls if stats.calls else 0
        lines.append(
            f"{100 * stats.exclusive / total:>6.2f}% "
            f"{stats.exclusive:>12} {stats.calls:>9} "
            f"{per_call:>12.1f}  {stats.method}"
        )
    lines += ["", "Call graph:", ""]
    edges = _edges(analysis)
    for index, stats in enumerate(analysis.methods()[:top], start=1):
        callers = [
            (caller, calls, incl)
            for (caller, callee), (calls, incl) in edges.items()
            if callee == stats.method and caller is not None
        ]
        callees = [
            (callee, calls, incl)
            for (caller, callee), (calls, incl) in edges.items()
            if caller == stats.method
        ]
        for caller, calls, incl in sorted(callers):
            lines.append(f"{'':>18} {caller}  ({calls} calls)")
        lines.append(
            f"[{index}] {100 * stats.inclusive / total:>6.2f}% "
            f"{stats.method} ({stats.calls} calls, "
            f"{stats.inclusive} incl)"
        )
        for callee, calls, incl in sorted(callees):
            lines.append(f"{'':>18}   -> {callee}  ({calls} calls)")
        lines.append("-" * 60)
    return "\n".join(lines) + "\n"


def to_callgrind(analysis):
    """Callgrind format (open the file in KCachegrind).

    Self cost goes on the function; each caller->callee edge carries
    its call count and inclusive cost.
    """
    lines = [
        "# callgrind format",
        "version: 1",
        "creator: tee-perf",
        "events: Ticks",
        "",
    ]

    def location(method):
        file, line = analysis.locations.get(method, (None, None))
        return file or "??", line or 0

    edges = _edges(analysis)
    for stats in analysis.methods():
        file, line = location(stats.method)
        lines.append(f"fl={file}")
        lines.append(f"fn={stats.method}")
        lines.append(f"{line} {stats.exclusive}")
        for (caller, callee), (calls, incl) in sorted(
            edges.items(), key=lambda kv: str(kv[0])
        ):
            if caller != stats.method:
                continue
            cfile, cline = location(callee)
            lines.append(f"cfl={cfile}")
            lines.append(f"cfn={callee}")
            lines.append(f"calls={calls} {cline}")
            lines.append(f"{line} {incl}")
        lines.append("")
    return "\n".join(lines)


def to_speedscope(analysis, name="tee-perf profile"):
    """speedscope.app "evented" JSON: the exact event timeline.

    One speedscope profile per thread, frames shared.
    """
    frame_index = {}
    frames = []

    def frame_id(method):
        if method not in frame_index:
            file, line = analysis.locations.get(method, (None, None))
            frame_index[method] = len(frames)
            frames.append(
                {"name": method, "file": file or "??", "line": line or 0}
            )
        return frame_index[method]

    events_by_thread = {}
    for record in analysis.records:
        fid = frame_id(record.method)
        events = events_by_thread.setdefault(record.tid, [])
        events.append((record.enter, "O", fid, record.depth))
        events.append((record.exit, "C", fid, record.depth))
    profiles = []
    for tid, events in sorted(events_by_thread.items()):
        # Nesting at equal timestamps: deepest closes first, then
        # shallowest opens first.
        events.sort(
            key=lambda e: (
                e[0],
                0 if e[1] == "C" else 1,
                -e[3] if e[1] == "C" else e[3],
            )
        )
        start = events[0][0]
        end = max(e[0] for e in events)
        profiles.append(
            {
                "type": "evented",
                "name": f"thread {tid}",
                "unit": "none",
                "startValue": start,
                "endValue": end,
                "events": [
                    {"type": kind, "frame": fid, "at": at}
                    for at, kind, fid, _ in events
                ],
            }
        )
    return json.dumps(
        {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "shared": {"frames": frames},
            "profiles": profiles,
        },
        indent=2,
    )


def to_json(analysis):
    """A plain JSON dump of the aggregates and folded stacks."""
    pipeline = getattr(analysis, "pipeline", None)
    return json.dumps(
        {
            "meta": analysis.meta,
            "tick_ns": analysis.tick_ns,
            "unmatched_returns": analysis.unmatched_returns,
            "pipeline": pipeline.to_dict() if pipeline else None,
            "methods": [
                {
                    "method": s.method,
                    "calls": s.calls,
                    "inclusive": s.inclusive,
                    "exclusive": s.exclusive,
                    "min_inclusive": s.min_inclusive,
                    "max_inclusive": s.max_inclusive,
                    "threads": sorted(s.threads),
                }
                for s in analysis.methods()
            ],
            "folded": {
                ";".join(path): ticks
                for path, ticks in sorted(analysis.folded().items())
            },
        },
        indent=2,
    )


def to_metrics(analysis, prefix="teeperf"):
    """Prometheus-style exposition text: the pipeline counters plus
    the headline profile gauges.

    TEEMon's insight is that a TEE profiler earns its keep when its
    counters are continuously scrapeable; this writer makes one
    analysis pass look exactly like such a scrape, so the output can
    be pushed to a textfile collector unchanged.
    """
    lines = []

    def metric(name, kind, help_text, value):
        lines.append(f"# HELP {prefix}_{name} {help_text}")
        lines.append(f"# TYPE {prefix}_{name} {kind}")
        lines.append(f"{prefix}_{name} {value}")

    pipeline = getattr(analysis, "pipeline", None)
    if pipeline is not None:
        metric(
            "recorder_events_recorded_total", "counter",
            "Events the recorder committed to the shared log.",
            pipeline.entries_recorded,
        )
        metric(
            "recorder_events_dropped_total", "counter",
            "Events lost at record time (log reservation overflow).",
            pipeline.entries_dropped,
        )
        metric(
            "entries_ingested_total", "counter",
            "Log entries decoded by the analyzer.",
            pipeline.entries_ingested,
        )
        metric(
            "entries_dropped_total", "counter",
            "Events lost at record time (log reservation overflow).",
            pipeline.entries_dropped,
        )
        metric(
            "entries_dismissed_total", "counter",
            "Returns dismissed for want of a matching open frame.",
            pipeline.entries_dismissed,
        )
        metric(
            "frames_truncated_total", "counter",
            "Calls closed at the thread's last observed counter.",
            pipeline.frames_truncated,
        )
        metric(
            "chunks_processed_total", "counter",
            "Fixed-size ingestion chunks decoded.",
            pipeline.chunks_processed,
        )
        metric(
            "shards_analyzed_total", "counter",
            "Per-thread shards reconstructed.",
            pipeline.shards_analyzed,
        )
        metric(
            "shards_vectorised_total", "counter",
            "Shards reconstructed by the vector engine's array passes.",
            pipeline.shards_vectorised,
        )
        metric(
            "shards_fallback_total", "counter",
            "Anomalous shards that fell back to the sequential loop.",
            pipeline.shards_fallback,
        )
        metric(
            "segments_sealed_total", "counter",
            "Sealed writer blocks (CRC seal records) observed.",
            pipeline.segments_sealed,
        )
        metric(
            "entries_salvaged_total", "counter",
            "Entries recovery rebuilt from a damaged log.",
            pipeline.entries_salvaged,
        )
        metric(
            "entries_quarantined_total", "counter",
            "Entries recovery set aside (torn/truncated/unsealed/CRC).",
            pipeline.entries_quarantined,
        )
        metric(
            "crc_failures_total", "counter",
            "Sealed segments whose CRC32 no longer matched.",
            pipeline.crc_failures,
        )
        metric(
            "bytes_written_total", "counter",
            "Fixed-width entry bytes committed to the shared log.",
            pipeline.bytes_written,
        )
        metric(
            "bytes_on_disk_total", "counter",
            "Bytes the persisted log image occupies.",
            pipeline.bytes_on_disk,
        )
        metric(
            "compression_ratio", "gauge",
            "Entry bytes per persisted byte (rev 1.2 columnar).",
            f"{pipeline.compression_ratio:.6f}",
        )
        metric(
            "ingest_rate_entries_per_tick", "gauge",
            "Entries ingested per software-counter tick.",
            f"{pipeline.ingest_rate:.6f}",
        )
        metric(
            "symbol_cache_hit_rate", "gauge",
            "Fraction of symbol resolutions served from the LRU.",
            f"{pipeline.cache_hit_rate:.6f}",
        )
    metric(
        "profile_calls_total", "counter",
        "Completed (or truncated) method invocations.",
        len(analysis.records),
    )
    metric(
        "profile_threads", "gauge",
        "Distinct threads observed in the profile.",
        len(analysis.threads()),
    )
    metric(
        "profile_exclusive_ticks_total", "counter",
        "Total attributed exclusive ticks.",
        analysis.total_exclusive(),
    )
    return "\n".join(lines) + "\n"
