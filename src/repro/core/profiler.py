"""The TEE-Perf facade: all four stages behind one handle.

Typical simulated-mode use (the evaluation's configuration)::

    from repro.api import TEEPerf
    from repro.tee import SGX_V1

    perf = TEEPerf.simulated(platform=SGX_V1, cores=8)
    perf.compile_instance(workload)        # stage 1
    perf.record(workload.run)              # stage 2
    analysis = perf.analyze()              # stage 3
    print(analysis.report())
    perf.flamegraph().write_svg("out.svg") # stage 4

Live mode profiles real Python code the same way, with a real counter
thread instead of the virtual clock::

    perf = TEEPerf.live()
    perf.compile_module(my_module)
    perf.record(my_module.main)
    print(perf.analyze().report())
    perf.uninstrument()
"""

from repro.core.analyzer import Analyzer
from repro.core.errors import RecorderError, TEEPerfError
from repro.core.flamegraph import FlameGraph
from repro.core.instrument import Instrumenter
from repro.core.query import QuerySession
from repro.core.recorder import DEFAULT_CAPACITY, LiveRecorder, Recorder
from repro.machine import Machine
from repro.tee import NATIVE, make_env


class TEEPerf:
    """One profiling pipeline: compile, record, analyze, visualize."""

    def __init__(
        self,
        recorder_factory,
        instrumenter,
        machine=None,
        env=None,
        monitor=None,
    ):
        self._recorder_factory = recorder_factory
        self._instrumenter = instrumenter
        self.machine = machine
        self.env = env
        self.monitor = monitor
        self.program = None
        self.recorder = None
        self._analysis = None

    # ------------------------------------------------------------------
    # Constructors

    @classmethod
    def simulated(
        cls,
        platform=NATIVE,
        cores=8,
        machine=None,
        capacity=DEFAULT_CAPACITY,
        select=None,
        name="a.out",
        aslr_seed=1,
        monitor=None,
        writer_block=0,
        sealed=False,
        record=None,
    ):
        """A profiler for workloads on the simulated machine.

        `platform` picks the TEE cost model the workload runs under;
        the profiler itself stays platform-independent.  Passing a
        :class:`repro.monitor.Monitor` attaches live samplers for the
        recorder, counter, TEE cost model and (after ``analyze``) the
        pipeline stats.  ``writer_block > 0`` routes events through
        per-thread batched writers (default: per-event appends, which
        keep simulated runs byte-deterministic); ``sealed=True``
        records crash-consistent sealed segments.  A
        :class:`repro.core.options.RecordOptions` passed as `record`
        configures all of that in one object (and wins over the
        individual kwargs).
        """
        machine = machine or Machine(cores=cores)
        env = make_env(machine, platform)

        def factory(program):
            return Recorder(
                machine,
                env,
                program,
                capacity=capacity,
                aslr_seed=aslr_seed,
                monitor=monitor,
                writer_block=writer_block,
                sealed=sealed,
                options=record,
            )

        return cls(
            factory,
            Instrumenter(name, select=select),
            machine=machine,
            env=env,
            monitor=monitor,
        )

    @classmethod
    def live(
        cls, capacity=DEFAULT_CAPACITY, select=None, name="a.out",
        monitor=None, writer_block=None, sealed=False, record=None,
    ):
        """A profiler for real (unsimulated) Python code.

        `writer_block` sizes the per-thread batched writers (``0``
        forces per-event appends; default:
        :data:`repro.core.log.DEFAULT_WRITER_BLOCK`).  `sealed` and
        `record` mirror :meth:`simulated`.
        """
        kwargs = {}
        if writer_block is not None:
            kwargs["writer_block"] = writer_block

        def factory(program):
            return LiveRecorder(
                program, capacity=capacity, monitor=monitor,
                sealed=sealed, options=record, **kwargs
            )

        return cls(factory, Instrumenter(name, select=select), monitor=monitor)

    @classmethod
    def auto(cls, scope=None, capacity=DEFAULT_CAPACITY, version=None):
        """A zero-setup live profiler for *unmodified* Python code.

        No compile stage: the interpreter's profile hook supplies the
        call/return events, and functions are laid out in the image the
        first time they execute.  `scope` restricts tracing to your own
        modules (a prefix string, a list of prefixes, or a predicate on
        the module name).
        """
        from repro.core.autotrace import AutoRecorder, AutoTracer

        tracer = AutoTracer(scope=scope)

        def factory(program):
            return AutoRecorder(tracer, capacity=capacity, version=version)

        profiler = cls(factory, None)
        profiler.program = tracer.program
        return profiler

    # ------------------------------------------------------------------
    # Stage 1: compile

    def compile_module(self, module, prefix=None):
        """Instrument every function defined in `module`."""
        self._require_instrumenter().instrument_module(module, prefix=prefix)
        return self

    def compile_instance(self, obj, prefix=None):
        """Instrument the methods of `obj`."""
        self._require_instrumenter().instrument_instance(obj, prefix=prefix)
        return self

    def compile_class(self, cls, prefix=None):
        """Instrument the methods of `cls` for all its instances."""
        self._require_instrumenter().instrument_class(cls, prefix=prefix)
        return self

    def compile_function(self, func, owner, attr, prefix=None):
        """Instrument one function bound at ``owner.attr``."""
        self._require_instrumenter().instrument_function(
            func, owner, attr, prefix
        )
        return self

    def _require_instrumenter(self):
        if self._instrumenter is None:
            raise TEEPerfError(
                "this profiler auto-traces: there is no compile stage"
            )
        return self._instrumenter

    # ------------------------------------------------------------------
    # Stage 2: record

    def record(self, entry, *args, **kwargs):
        """Run ``entry(*args, **kwargs)`` under the recorder.

        In simulated mode the entry function becomes the machine's root
        thread; in live mode it is called directly.  Returns the entry
        function's result.
        """
        if self.program is None:
            self.program = self._instrumenter.finish()
        self.recorder = self._recorder_factory(self.program)
        self._analysis = None
        with self.recorder:
            if self.machine is not None:
                return self.machine.run(entry, *args, **kwargs)
            return entry(*args, **kwargs)

    def pause(self):
        self._require_recorder().pause()

    def resume(self):
        self._require_recorder().resume()

    def persist(self, path, image_path=None):
        """Write the raw log — and the simulated binary's symbol table
        — to disk, so ``tee-perf analyze`` can work fully offline.

        `image_path` defaults to ``<path>.symtab.json``; pass False to
        skip the image.
        """
        self._require_recorder().persist(path)
        if image_path is not False:
            image_path = image_path or f"{path}.symtab.json"
            with open(image_path, "w") as fh:
                fh.write(self.program.image.to_json())

    # ------------------------------------------------------------------
    # Stage 3: analyze

    def analyze(self, log=None, jobs=1, chunk_size=None, engine="auto",
                recover="off", options=None):
        """Analyze the last recording (or an explicit log/path).

        `jobs` widens the analyzer's per-thread shard pool; `engine`
        picks the reconstruction kernel; `recover` salvages a damaged
        log first (``"auto"``) or refuses damage (``"strict"``) — see
        :meth:`~repro.core.analyzer.Analyzer.analyze`.  An
        :class:`~repro.core.options.AnalyzeOptions` passed as
        `options` wins over the individual kwargs.  The resulting
        ``analysis.pipeline`` carries the recorder's counters (events
        dropped at record time) merged with the analyzer's.
        """
        if self.program is None:
            if not self._instrumenter.program.functions:
                raise TEEPerfError("nothing compiled yet")
            raise RecorderError("no recording was made yet")
        recorder = self._require_recorder() if log is None else None
        source = log if log is not None else recorder.log
        stats = recorder.pipeline_stats() if recorder is not None else None
        analyzer = Analyzer(self.program.image, tick_ns=self._tick_ns())
        self._analysis = analyzer.analyze(
            source, jobs=jobs, chunk_size=chunk_size, stats=stats,
            engine=engine, recover=recover, options=options,
        )
        if self.monitor is not None and self._analysis.pipeline is not None:
            from repro.monitor import PipelineSampler

            self.monitor.attach(PipelineSampler(self._analysis.pipeline))
            self.monitor.poll_once()
        return self._analysis

    def query(self):
        """An interactive-style query session over the last analysis."""
        return QuerySession(self._last_analysis())

    # ------------------------------------------------------------------
    # Stage 4: visualize

    def flamegraph(self, title=None):
        analysis = self._last_analysis()
        return FlameGraph.from_analysis(
            analysis, title=title or f"TEE-Perf: {self.program.name}"
        )

    # ------------------------------------------------------------------
    # Housekeeping

    def uninstrument(self):
        """Restore every patched function (clean rebuild)."""
        if self.program is not None:
            self.program.restore_all()

    def events_recorded(self):
        return self._require_recorder().events_recorded()

    def _tick_ns(self):
        if self.recorder is not None and hasattr(
            self.recorder.counter, "resolution_ns"
        ):
            return self.recorder.counter.resolution_ns() or 1.0
        return 1.0

    def _require_recorder(self):
        if self.recorder is None:
            raise RecorderError("no recording was made yet")
        return self.recorder

    def _last_analysis(self):
        if self._analysis is None:
            return self.analyze()
        return self._analysis
