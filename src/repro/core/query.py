"""The declarative query interface (§II-C "Queries").

After the analyzer has read the log, the user can interrogate the data
further.  The paper drops the user into an interactive session over
pandas dataframes; here :class:`QuerySession` wraps the analysis in the
same style — the raw frames are exposed (``session.records``,
``session.methods``) for arbitrary declarative queries, and the
questions the paper calls out (contention, call dependencies, "which
thread called which method how often") have named helpers.
"""

from repro.core.errors import AnalyzerError


class QuerySession:
    """Declarative queries over an :class:`~repro.core.analyzer.Analysis`."""

    def __init__(self, analysis):
        self.analysis = analysis
        self._records_frame = None
        self._methods_frame = None

    @property
    def records(self):
        """The per-invocation frame (built on first use — canned
        queries that touch only one frame pay for one)."""
        if self._records_frame is None:
            self._records_frame = self.analysis.records_frame()
        return self._records_frame

    @property
    def methods(self):
        """The per-method aggregate frame (built on first use)."""
        if self._methods_frame is None:
            self._methods_frame = self.analysis.methods_frame()
        return self._methods_frame

    # ------------------------------------------------------------------
    # Canned queries from the paper's motivation

    def hottest(self, n=10, by="exclusive"):
        """The n methods with the most time, hottest first."""
        return self.methods.sort(by, reverse=True).head(n)

    def thread_method_counts(self):
        """Which thread called which method how often (§III)."""
        return (
            self.records.groupby("thread", "method")
            .count("calls")
            .sort("calls", reverse=True)
        )

    def callers_of(self, method):
        """Who calls `method`, with call counts and total time."""
        calls = self.records.filter(method=method)
        if not len(calls):
            raise AnalyzerError(f"{method!r} does not appear in the profile")
        return (
            calls.groupby("caller")
            .agg(calls=("method", len), inclusive=("inclusive", sum))
            .sort("calls", reverse=True)
        )

    def callees_of(self, method):
        """What `method` calls directly, with counts and total time."""
        return (
            self.records.filter(caller=method)
            .groupby("method")
            .agg(calls=("thread", len), inclusive=("inclusive", sum))
            .sort("inclusive", reverse=True)
        )

    def calls_deeper_than(self, depth):
        """Deep call chains — a quick recursion/contention smell."""
        return self.records.filter(lambda r: r["depth"] > depth)

    def slowest_invocations(self, n=10):
        """Individual invocations by inclusive time (tail hunting)."""
        return self.records.sort("inclusive", reverse=True).head(n)

    def method_by_call_history(self, method):
        """Per-caller timing of `method`: performance depending on the
        call history (§II-C "Call stack")."""
        calls = self.records.filter(method=method)
        if not len(calls):
            raise AnalyzerError(f"{method!r} does not appear in the profile")
        return (
            calls.groupby("caller")
            .agg(
                calls=("inclusive", len),
                total=("inclusive", sum),
                mean=("inclusive", lambda v: sum(v) / len(v)),
                worst=("inclusive", max),
            )
            .sort("total", reverse=True)
        )

    def contention_candidates(self, n=10):
        """Methods whose worst invocation dwarfs their mean — the
        signature of waiting behind a lock."""
        frame = self.records.groupby("method").agg(
            calls=("inclusive", len),
            mean=("inclusive", lambda v: sum(v) / len(v)),
            worst=("inclusive", max),
        )
        frame = frame.filter(lambda r: r["calls"] > 1 and r["mean"] > 0)
        return (
            frame.with_column("skew", lambda r: r["worst"] / r["mean"])
            .sort("skew", reverse=True)
            .head(n)
        )

    def summary(self):
        """One-paragraph overview of the profile."""
        analysis = self.analysis
        hottest = analysis.methods()[0] if analysis.methods() else None
        lines = [
            f"calls: {len(analysis.records)}",
            f"threads: {len(analysis.threads())}",
            f"total exclusive ticks: {analysis.total_exclusive()}",
        ]
        if hottest:
            share = 100 * analysis.exclusive_fraction(hottest.method)
            lines.append(
                f"hottest method: {hottest.method} ({share:.1f}% exclusive)"
            )
        return "\n".join(lines)
