"""Software counters: the profiler's platform-independent clock.

The paper's recorder maps a counter into the TEE.  If the platform has
a usable hardware counter it is used directly; otherwise a *software
counter* — a host thread incrementing a word in a tight loop —
provides a fine-grained, "reasonably accurate" clock at the price of
one dedicated core.

Three implementations share one interface (``start``/``stop``/``read``
plus ``ticks_to_ns``):

* :class:`VirtualCounter` — simulation mode; reads quantise the calling
  thread's virtual time to the counter resolution, and starting it
  reserves a machine core just as the real loop would.
* :class:`ThreadCounter` — live mode; an actual Python thread bumping
  an attribute in a loop.  The GIL makes its resolution coarse, which
  is faithfully reported through :meth:`resolution_ns`.
* :class:`PerfCounterClock` — live mode when a "hardware" counter is
  acceptable: ``time.perf_counter_ns``.
"""

import threading
import time

from repro.core.errors import RecorderError

# A dependent increment through a shared cache line: the effective tick
# granularity of the paper's tight-loop counter as seen by a reader on
# another core.
DEFAULT_RESOLUTION_CYCLES = 8.0


class VirtualCounter:
    """Simulation-mode counter backed by the machine's virtual clock."""

    def __init__(self, machine, resolution_cycles=DEFAULT_RESOLUTION_CYCLES):
        if resolution_cycles <= 0:
            raise ValueError(
                f"resolution must be positive: {resolution_cycles}"
            )
        self.machine = machine
        self.resolution_cycles = resolution_cycles
        self._running = False
        # Integer fast path for the per-event read: when the resolution
        # is a power of two (the default, 8.0) its reciprocal is exact
        # in binary floating point, so `time * recip` truncates to the
        # same integer as `time / resolution` — one multiply instead of
        # a divide, with bit-identical results.
        self._recip = None
        as_int = int(resolution_cycles)
        if resolution_cycles == as_int and as_int & (as_int - 1) == 0:
            self._recip = 1.0 / resolution_cycles
        self._current = machine.current

    def start(self):
        """Dedicate a core to the counter loop."""
        if self._running:
            raise RecorderError("counter already running")
        self.machine.reserve_core()
        self._running = True

    def stop(self):
        if not self._running:
            raise RecorderError("counter not running")
        self.machine.release_core()
        self._running = False

    @property
    def running(self):
        return self._running

    def read(self):
        """Current tick count as seen by the calling simulated thread."""
        recip = self._recip
        if recip is not None:
            return int(self._current().local_time * recip)
        return int(self._current().local_time / self.resolution_cycles)

    def ticks_to_ns(self, ticks):
        return self.machine.clock.cycles_to_ns(ticks * self.resolution_cycles)

    def resolution_ns(self):
        return self.machine.clock.cycles_to_ns(self.resolution_cycles)


class ThreadCounter:
    """Live-mode counter: a real thread incrementing in a tight loop."""

    def __init__(self):
        self.value = 0
        self._stop = threading.Event()
        self._thread = None
        self._started_ns = None
        self._stopped_ns = None

    def start(self):
        if self._thread is not None:
            raise RecorderError("counter already running")
        self._stop.clear()
        self._started_ns = time.perf_counter_ns()
        self._thread = threading.Thread(
            target=self._loop, name="tee-perf-counter", daemon=True
        )
        self._thread.start()

    def _loop(self):
        # The attribute store is the shared word; the periodic event
        # check keeps shutdown prompt without a lock on the hot path.
        while not self._stop.is_set():
            value = self.value
            for _ in range(1024):
                value += 1
            self.value = value

    def stop(self):
        if self._thread is None:
            raise RecorderError("counter not running")
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._stopped_ns = time.perf_counter_ns()

    @property
    def running(self):
        return self._thread is not None

    def read(self):
        return self.value

    def ticks_to_ns(self, ticks):
        """Calibrated after the run: wall time divided by total ticks."""
        if not self.value or self._started_ns is None:
            return 0.0
        end = self._stopped_ns or time.perf_counter_ns()
        return ticks * (end - self._started_ns) / self.value

    def resolution_ns(self):
        return self.ticks_to_ns(1)


class PerfCounterClock:
    """Live-mode "hardware" counter: the host's monotonic clock."""

    running = False

    def start(self):
        self.running = True

    def stop(self):
        self.running = False

    def read(self):
        return time.perf_counter_ns()

    def ticks_to_ns(self, ticks):
        return float(ticks)

    def resolution_ns(self):
        return 1.0
