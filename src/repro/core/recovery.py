"""Crash recovery: salvage analysis for damaged TEE-Perf logs.

The recorder lives outside the TEE precisely so the log survives an
application crash (paper §Recorder); this module is the reader-side
half of that promise.  Given a snapshot that may be truncated, torn
mid-entry, or corrupted after the fact, :func:`recover_log` classifies
every byte of the entry array and rebuilds a clean log from the parts
that are provably (or plausibly) committed:

* **sealed logs** (``FLAG_SEALED``): a segment is *recovered* when its
  seal record's CRC32 still matches the bytes on disk; a segment whose
  CRC mismatches is quarantined (``crc-mismatch``); committed regions
  covered by no seal are quarantined (``unsealed``) unless they sit
  below the header's monotonic seal watermark, which vouches for the
  contiguous prefix even when a truncation ate the journal trailer;
* **unsealed logs**: every complete committed entry is salvaged
  structurally — exactly the prefix an undamaged reader would decode;
* in both cases a trailing partial entry is quarantined as
  ``torn-entry`` and entries the tail claims beyond the bytes present
  as ``truncated``.

Nothing is silently dropped: the :class:`RecoveryReport` lists every
quarantined range with its byte offsets, entry counts and reason code,
plus per-thread salvage counts and the four counters that flow into
:class:`repro.core.stats.PipelineStats` (``segments_sealed``,
``entries_salvaged``, ``entries_quarantined``, ``crc_failures``).

:func:`repair_tails` is a separate, explicitly requested pass
(``tee-perf recover --repair-tails``) that balances each thread's
CALL/RET tail with synthetic returns so the strict vector engine
accepts every shard; the analyzer's ``recover="auto"`` path does *not*
repair — the python oracle already closes open frames as truncated,
which keeps salvaged-prefix analysis byte-identical to analysing the
undamaged prefix.
"""

import os
import struct
import zlib
from dataclasses import dataclass, field

from repro.core.errors import LogFormatError, RecoveryError
from repro.core.log import (
    FLAG_MULTITHREAD,
    HEADER_SIZE,
    KIND_CALL,
    KIND_RET,
    LogStream,
    SharedLog,
    _merge_intervals,
    _validate_header,
    _VERSION_SHIFT,
    is_compressed_image,
)

#: Valid ``recover=`` modes for :meth:`repro.core.analyzer.Analyzer.analyze`:
#: ``"off"`` trusts the log, ``"auto"`` salvages damage and analyses
#: what survives, ``"strict"`` raises :class:`RecoveryError` on any
#: quarantine or CRC failure.
RECOVER_MODES = ("off", "auto", "strict")

# Reason codes for quarantined ranges.
REASON_TORN = "torn-entry"
REASON_TRUNCATED = "truncated"
REASON_CRC = "crc-mismatch"
REASON_UNSEALED = "unsealed"


@dataclass(frozen=True)
class QuarantinedRange:
    """A contiguous region of the original image recovery refused.

    ``start``/``count`` are entry indices (``count`` can be 0 for
    stray in-flight bytes past the tail); ``byte_start``/``byte_end``
    locate the region in the original image.
    """

    start: int
    count: int
    byte_start: int
    byte_end: int
    reason: str


@dataclass
class RecoveryReport:
    """What salvage found, kept and quarantined."""

    sealed: bool = False
    capacity: int = 0
    tail: int = 0
    present: int = 0
    watermark: int = 0
    segments_sealed: int = 0  # seal records observed in the journal
    segments_recovered: int = 0  # of those, CRC-verified and salvaged
    entries_salvaged: int = 0
    entries_quarantined: int = 0
    crc_failures: int = 0
    tails_repaired: int = 0  # synthetic RETs added by repair_tails
    rets_dropped: int = 0  # unmatched RETs dropped by repair_tails
    salvaged_per_thread: dict = field(default_factory=dict)
    quarantined_per_thread: dict = field(default_factory=dict)
    quarantined: list = field(default_factory=list)

    @property
    def ok(self):
        """True when nothing was quarantined or CRC-failed."""
        return not self.entries_quarantined and not self.crc_failures \
            and not self.quarantined

    def counters(self):
        """The four counters PipelineStats carries."""
        return {
            "segments_sealed": self.segments_sealed,
            "entries_salvaged": self.entries_salvaged,
            "entries_quarantined": self.entries_quarantined,
            "crc_failures": self.crc_failures,
        }

    def to_dict(self):
        return {
            "sealed": self.sealed,
            "capacity": self.capacity,
            "tail": self.tail,
            "present": self.present,
            "watermark": self.watermark,
            "segments_sealed": self.segments_sealed,
            "segments_recovered": self.segments_recovered,
            "entries_salvaged": self.entries_salvaged,
            "entries_quarantined": self.entries_quarantined,
            "crc_failures": self.crc_failures,
            "tails_repaired": self.tails_repaired,
            "rets_dropped": self.rets_dropped,
            "salvaged_per_thread": dict(self.salvaged_per_thread),
            "quarantined_per_thread": dict(self.quarantined_per_thread),
            "quarantined": [
                {
                    "start": q.start,
                    "count": q.count,
                    "byte_start": q.byte_start,
                    "byte_end": q.byte_end,
                    "reason": q.reason,
                }
                for q in self.quarantined
            ],
        }

    def report(self):
        """A human-readable salvage summary."""
        lines = [
            "TEE-Perf recovery report",
            f"  log: {'sealed' if self.sealed else 'unsealed'}, "
            f"tail={self.tail}, present={self.present}, "
            f"capacity={self.capacity}, watermark={self.watermark}",
            f"  salvaged: {self.entries_salvaged} entries "
            f"({self.segments_recovered}/{self.segments_sealed} "
            f"sealed segments CRC-verified)",
            f"  quarantined: {self.entries_quarantined} entries in "
            f"{len(self.quarantined)} ranges, "
            f"crc failures: {self.crc_failures}",
        ]
        if self.tails_repaired or self.rets_dropped:
            lines.append(
                f"  repaired: {self.tails_repaired} synthetic RETs "
                f"added, {self.rets_dropped} unmatched RETs dropped"
            )
        for q in self.quarantined:
            lines.append(
                f"    [{q.start}, {q.start + q.count}) "
                f"bytes {q.byte_start}..{q.byte_end}: {q.reason}"
            )
        tids = set(self.salvaged_per_thread) | set(self.quarantined_per_thread)
        for tid in sorted(tids):
            lines.append(
                f"  thread {tid}: "
                f"{self.salvaged_per_thread.get(tid, 0)} salvaged, "
                f"{self.quarantined_per_thread.get(tid, 0)} quarantined"
            )
        return "\n".join(lines)


def _subtract(intervals, holes):
    """`intervals` minus `holes`, both sorted merged (start, end) lists."""
    out = []
    for start, end in intervals:
        cursor = start
        for hs, he in holes:
            if he <= cursor or hs >= end:
                continue
            if hs > cursor:
                out.append((cursor, hs))
            cursor = max(cursor, he)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
    return out


def _coerce(source):
    """Normalise any log source for salvage, without copying.

    Fixed-width images come back as a tolerantly-parsed, *read-only*
    :class:`SharedLog` view over the caller's buffer (salvage never
    mutates its input — the rebuilt log is a fresh allocation), so the
    fleet shm fast path hands segments straight in as ``memoryview``
    with zero serialisation.  Rev 1.2 compressed images come back as a
    ``memoryview`` for :func:`_recover_columnar` to block-scan.
    """
    if isinstance(source, SharedLog):
        return source
    if isinstance(source, LogStream):
        source = source._buf
    else:
        from repro.core.columnar import ColumnarLog

        if isinstance(source, ColumnarLog):
            source = source._buf
    if isinstance(source, (str, os.PathLike)):
        with open(source, "rb") as fh:
            source = fh.read()
    try:
        view = memoryview(source)
    except TypeError:
        raise TypeError(
            f"cannot recover from {type(source).__name__}"
        ) from None
    if is_compressed_image(view):
        return view
    return SharedLog.view(view)


def _salvage_plan(log):
    """Classify the entry array into salvage intervals and quarantined
    ranges; returns ``(salvage, report)`` with `salvage` a sorted list
    of half-open entry-index intervals."""
    es = log.entry_size
    present = log._present
    extent = min(log.tail_or_live(), log.capacity)
    readable = min(extent, present)
    report = RecoveryReport(
        sealed=log.sealed,
        capacity=log.capacity,
        tail=extent,
        present=present,
        watermark=log.seal_watermark,
        segments_sealed=len(log._seals),
    )

    if log.sealed:
        valid, bad = [], []
        for r in log._seals:
            if r.end <= present:
                if log._crc_block(r.start, r.count) == r.crc:
                    if r.start < readable:
                        valid.append((r.start, min(r.end, readable)))
                        report.segments_recovered += 1
                    continue
                report.crc_failures += 1
                if r.start < readable:
                    bad.append((r.start, min(r.end, readable)))
            # A seal past the bytes present cannot be CRC-verified;
            # its surviving prefix may still ride the watermark rule.
        bad = _merge_intervals(bad)
        watermark = min(log.seal_watermark, readable)
        salvage = _merge_intervals(
            valid + _subtract([(0, watermark)] if watermark else [], bad)
        )
    else:
        salvage = [(0, readable)] if readable else []

    for start, end in _subtract([(0, readable)] if readable else [], salvage):
        overlaps_bad = log.sealed and any(
            hs < end and he > start for hs, he in bad
        )
        report.quarantined.append(
            QuarantinedRange(
                start,
                end - start,
                HEADER_SIZE + start * es,
                HEADER_SIZE + end * es,
                REASON_CRC if overlaps_bad else REASON_UNSEALED,
            )
        )

    # Beyond the bytes present: a torn partial entry, then pure
    # truncation up to what the tail claims.
    leftover = (log._array_end - HEADER_SIZE) - present * es
    if leftover:
        torn_count = 1 if extent > present else 0
        report.quarantined.append(
            QuarantinedRange(
                present,
                torn_count,
                HEADER_SIZE + present * es,
                log._array_end,
                REASON_TORN,
            )
        )
    missing_from = present + (1 if leftover and extent > present else 0)
    if extent > missing_from:
        report.quarantined.append(
            QuarantinedRange(
                missing_from,
                extent - missing_from,
                HEADER_SIZE + missing_from * es,
                HEADER_SIZE + extent * es,
                REASON_TRUNCATED,
            )
        )

    report.entries_salvaged = sum(e - s for s, e in salvage)
    report.entries_quarantined = sum(q.count for q in report.quarantined)
    return salvage, report


def _tally_threads(log, intervals, counts):
    """Add per-thread entry counts over `intervals` into `counts`."""
    for start, end in intervals:
        for index in range(start, end):
            tid = log.entry(index).tid
            counts[tid] = counts.get(tid, 0) + 1


def _rebuild(log, salvage, capacity=None):
    """A fresh, clean SharedLog holding the salvaged entries in order."""
    if capacity is None:
        # Evidence-based sizing: the header's capacity word may itself
        # be corrupt (a single bit flip can claim 2**55 entries), so
        # never allocate beyond what the image demonstrably holds.
        total = sum(end - start for start, end in salvage)
        capacity = max(1, total, min(log.capacity, log._present))
    out = SharedLog.create(
        capacity,
        pid=log.pid,
        profiler_addr=log.profiler_addr,
        shm_base=log.shm_base,
        multithread=log.multithread,
        version=log.version,
    )
    es = log.entry_size
    cursor = 0
    for start, end in salvage:
        raw = memoryview(log._buf)[
            HEADER_SIZE + start * es : HEADER_SIZE + end * es
        ]
        out.write_block(cursor, end - start, raw)
        cursor += end - start
    out._next_free = cursor
    out._store_tail()
    return out


def _recover_columnar(data):
    """Salvage a rev 1.2 compressed columnar image, block by block.

    Every codec block carries its own CRC32 and a ``payload_len`` that
    lets the scan skip over it, so damage quarantines *exactly* the
    damaged block: a CRC mismatch (or a section that will not decode)
    drops that block with ``crc-mismatch`` and the scan keeps every
    healthy block after it.  A block whose bytes run off the end of
    the image stops the scan — its offsets and everything behind it
    are gone — and the remainder of what the header's tail claims is
    quarantined as ``truncated``.  The accounting identity holds
    exactly as for fixed-width salvage: ``salvaged + quarantined ==
    tail``.
    """
    from repro.core import columnar as _columnar

    view = memoryview(data)
    header = _validate_header(view)
    version = (header[1] >> _VERSION_SHIFT) & 0xFFFF
    tail = header[5]
    report = RecoveryReport(
        sealed=False, capacity=header[4], tail=tail, watermark=0
    )

    # Scan the block directory tolerantly: (entry cursor, byte offset,
    # per-block verdict).  Nothing decodes yet — sizing first.
    magic_end = HEADER_SIZE + len(_columnar.COLUMNAR_MAGIC)
    blocks = []  # (payload_at, count, crc, payload_len)
    scan_ok = (
        len(view) >= magic_end + 8
        and bytes(view[HEADER_SIZE:magic_end]) == _columnar.COLUMNAR_MAGIC
    )
    if scan_ok:
        (n_blocks,) = struct.unpack_from("<Q", view, magic_end)
        offset = magic_end + 8
        for _ in range(n_blocks):
            if offset + 24 > len(view):
                break  # block header itself truncated
            payload_len, count, crc = struct.unpack_from(
                "<3Q", view, offset
            )
            payload_at = offset + 24
            if payload_at + payload_len > len(view):
                break  # payload runs off the image: this and the rest
            blocks.append((payload_at, count, crc, payload_len))
            offset = payload_at + payload_len
    report.segments_sealed = len(blocks)

    decoded = []  # (count, LogColumns-tuple) for healthy blocks
    cursor = 0
    for index, (payload_at, count, crc, payload_len) in enumerate(blocks):
        payload = view[payload_at : payload_at + payload_len]
        bad = zlib.crc32(payload) != crc
        if bad:
            report.crc_failures += 1
        else:
            try:
                columns = _columnar._decode_block_payload(
                    payload, count, version
                )
            except LogFormatError:
                bad = True
        if bad:
            report.quarantined.append(
                QuarantinedRange(
                    cursor, count, payload_at,
                    payload_at + payload_len, REASON_CRC,
                )
            )
        else:
            decoded.append((cursor, columns))
            report.entries_salvaged += count
            report.segments_recovered += 1
        cursor += count
    report.present = cursor
    if tail > cursor:
        report.quarantined.append(
            QuarantinedRange(
                cursor, tail - cursor,
                min(len(view), magic_end), len(view), REASON_TRUNCATED,
            )
        )
    report.tail = max(tail, cursor)
    report.entries_quarantined = sum(q.count for q in report.quarantined)

    out = SharedLog.create(
        max(1, report.entries_salvaged),
        pid=header[3],
        profiler_addr=header[6],
        shm_base=header[2],
        multithread=bool(header[1] & FLAG_MULTITHREAD),
        version=version,
    )
    per_thread = report.salvaged_per_thread
    for _, (kind, counter, addr, tid, call_site) in decoded:
        out.append_columns(kind, counter, addr, tid, call_site)
        if _columnar._np is not None:
            uniq, counts = _columnar._np.unique(tid, return_counts=True)
            for t, c in zip(uniq.tolist(), counts.tolist()):
                per_thread[t] = per_thread.get(t, 0) + c
        else:
            for t in tid:
                t = int(t)
                per_thread[t] = per_thread.get(t, 0) + 1
    out._store_tail()
    return out, report


def recover_log(source, repair=False):
    """Salvage every committed region of a possibly damaged log.

    `source` may be a path, raw bytes/memoryview (zero-copy), a
    :class:`SharedLog`, a :class:`LogStream`, or a rev 1.2 compressed
    image (any of the above shapes — salvage dispatches on the header
    flag and quarantines per codec block).  Returns ``(salvaged,
    report)`` — a fresh, clean :class:`SharedLog` holding the
    recovered entries in log order, and the :class:`RecoveryReport`
    describing everything that was kept, repaired, or quarantined
    (with byte ranges and reason codes — nothing is dropped silently).

    With ``repair=True`` the salvaged log additionally gets its
    CALL/RET tails balanced by :func:`repair_tails`.

    Raises :class:`repro.core.errors.LogFormatError` when the header
    itself is too damaged to describe a log (no magic, no layout —
    there is nothing principled to salvage without it).
    """
    log = _coerce(source)
    if isinstance(log, memoryview):
        salvaged, report = _recover_columnar(log)
        if repair:
            salvaged = repair_tails(salvaged, report)
        return salvaged, report
    salvage, report = _salvage_plan(log)
    salvaged = _rebuild(log, salvage)
    _tally_threads(log, salvage, report.salvaged_per_thread)
    # Quarantined-but-decodable regions (unsealed bytes are intact,
    # just not vouched for) get per-thread counts too.
    decodable = [
        (q.start, q.start + q.count)
        for q in report.quarantined
        if q.reason == REASON_UNSEALED
    ]
    _tally_threads(log, decodable, report.quarantined_per_thread)
    if repair:
        salvaged = repair_tails(salvaged, report)
    return salvaged, report


def recovery_stats(report, stats):
    """Fold a report's counters into a PipelineStats instance."""
    stats.segments_sealed += report.segments_sealed
    stats.entries_salvaged += report.entries_salvaged
    stats.entries_quarantined += report.entries_quarantined
    stats.crc_failures += report.crc_failures
    return stats


def repair_tails(log, report=None):
    """Balance every thread's CALL/RET tail so strict engines accept it.

    Three repairs, per thread, preserving per-thread order:

    * a RET that matches no open frame is dropped (counted);
    * a RET that matches a *deeper* frame gets synthetic RETs for the
      intermediate frames spliced in front of it (same counter), so
      nesting stays perfectly matched;
    * frames still open at the end of the log are closed with
      synthetic RETs at the thread's last observed counter.

    Returns a fresh balanced :class:`SharedLog`; counts go on
    `report` (``tails_repaired`` / ``rets_dropped``) when given.
    """
    stacks = {}  # tid -> list of open call addrs
    last_counter = {}  # tid -> last counter observed
    kept = []  # (kind, counter, addr, tid, call_site)
    added = dropped = 0
    for e in log:
        last_counter[e.tid] = e.counter
        stack = stacks.setdefault(e.tid, [])
        if e.kind == KIND_CALL:
            stack.append(e.addr)
            kept.append((KIND_CALL, e.counter, e.addr, e.tid, e.call_site))
            continue
        if e.addr in stack:
            while stack and stack[-1] != e.addr:
                kept.append(
                    (KIND_RET, e.counter, stack.pop(), e.tid, 0)
                )
                added += 1
            stack.pop()
            kept.append((KIND_RET, e.counter, e.addr, e.tid, e.call_site))
        else:
            dropped += 1
    for tid, stack in stacks.items():
        while stack:
            kept.append((KIND_RET, last_counter[tid], stack.pop(), tid, 0))
            added += 1
    out = SharedLog.create(
        max(1, log.capacity, len(kept)),
        pid=log.pid,
        profiler_addr=log.profiler_addr,
        shm_base=log.shm_base,
        multithread=log.multithread,
        version=log.version,
    )
    for kind, counter, addr, tid, call_site in kept:
        out.append(kind, counter, addr, tid, call_site)
    out._store_tail()
    if report is not None:
        report.tails_repaired += added
        report.rets_dropped += dropped
    return out


def require_clean(report):
    """Raise :class:`RecoveryError` unless the report is spotless —
    the ``recover="strict"`` contract."""
    if not report.ok:
        raise RecoveryError(
            f"strict recovery: {report.entries_quarantined} entries "
            f"quarantined in {len(report.quarantined)} ranges, "
            f"{report.crc_failures} CRC failures",
            report=report,
        )
    return report
