"""Pipeline observability — the counters the streaming analyzer keeps.

TEEMon turned a one-shot TEE profiler into a continuously-fed pipeline
by exporting metrics at every stage; :class:`PipelineStats` is this
repository's equivalent.  One instance travels through a profiling run:
the recorder seeds it with what happened at record time (entries that
overflowed the log's reservation counter), the analyzer adds what
happened at analysis time (entries ingested per chunk, shards analyzed,
returns dismissed, frames truncated, symbol-cache traffic), and the
exporters (:func:`repro.core.export.to_json`,
:func:`repro.core.export.to_metrics`) and ``tee-perf analyze --stats``
surface it.

Every counter is a plain integer so merging two stats objects — e.g.
per-shard partials — is simple addition.
"""

from dataclasses import dataclass, fields


@dataclass
class PipelineStats:
    """Counters for one pass of the record -> ingest -> analyze pipeline.

    Attributes
    ----------
    entries_recorded:
        Events the *recorder* committed to the shared log (its view
        of the run, seeded before analysis starts).
    entries_ingested:
        Log entries decoded and fed to the per-thread shards.
    entries_dropped:
        Events the *recorder* lost because the log was full
        (reservation past the maximum size; §II-B's drop rule).
    entries_dismissed:
        Returns the *analyzer* dismissed because no open frame
        matched them (tracing was off during the call).
    frames_truncated:
        Calls closed at the thread's last observed counter value
        because their return never made it into the log.
    blocks_flushed:
        Batched-writer blocks committed to the log (0 when the
        recorder ran the per-event append path).
    chunks_processed:
        Fixed-size ingestion chunks decoded (1 for a batch pass).
    shards_analyzed:
        Per-thread shards reconstructed.
    jobs:
        Worker-pool width the shards ran under (1 = serial).
    chunk_size:
        Entries per ingestion chunk (0 = unchunked batch read).
    writer_block:
        Entries per batched-writer staging block (0 = per-event
        appends; see :class:`repro.core.log.ThreadLogWriter`).
    counter_span:
        Ticks between the smallest and largest counter value seen;
        the denominator of the ingest rate.
    cache_hits / cache_misses:
        Symbol-resolution LRU traffic (see
        :class:`repro.symbols.CachedResolver`).
    shards_vectorised / shards_fallback:
        Shards the vector engine reconstructed in whole-array passes
        vs. shards whose anomalies (unmatched returns, cross-frame
        closes, truncated tails) forced the sequential fallback.
        Both stay 0 under ``engine="python"``.
    segments_sealed:
        Seal records observed: committed writer blocks carrying a
        CRC32 in the log's seal journal (0 for unsealed logs and when
        no recovery pass ran).
    entries_salvaged / entries_quarantined:
        Recovery's verdict on a damaged log — entries rebuilt into
        the salvaged log vs. entries set aside with a reason code
        (torn, truncated, unsealed, CRC mismatch).  Quarantined
        entries are reported, never silently dropped (see
        :mod:`repro.core.recovery`).
    crc_failures:
        Sealed segments whose CRC32 no longer matched their bytes.
    bytes_written:
        Raw fixed-width entry bytes the recorder committed to the
        shared log (entries × entry size — what rev 1.0/1.1 would
        persist).
    bytes_on_disk:
        Bytes the persisted image actually occupies.  Equal to
        ``bytes_written`` plus the 64-byte header for uncompressed
        dumps; far smaller under rev 1.2 columnar compression.
    engine:
        The resolved reconstruction engine (``"vector"`` or
        ``"python"``; ``""`` before analysis has run).
    """

    entries_recorded: int = 0
    entries_ingested: int = 0
    entries_dropped: int = 0
    entries_dismissed: int = 0
    frames_truncated: int = 0
    blocks_flushed: int = 0
    chunks_processed: int = 0
    shards_analyzed: int = 0
    jobs: int = 1
    chunk_size: int = 0
    writer_block: int = 0
    counter_span: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    shards_vectorised: int = 0
    shards_fallback: int = 0
    segments_sealed: int = 0
    entries_salvaged: int = 0
    entries_quarantined: int = 0
    crc_failures: int = 0
    bytes_written: int = 0
    bytes_on_disk: int = 0
    engine: str = ""

    # ------------------------------------------------------------------
    # Derived rates

    @property
    def ingest_rate(self):
        """Entries ingested per counter tick (0.0 on an empty span)."""
        if self.counter_span <= 0:
            return 0.0
        return self.entries_ingested / self.counter_span

    @property
    def cache_hit_rate(self):
        """Fraction of symbol resolutions served from the LRU."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    @property
    def compression_ratio(self):
        """Fixed-width entry bytes per byte persisted (1.0 means no
        compression; 0.0 before anything was written *and* persisted)."""
        if self.bytes_written <= 0 or self.bytes_on_disk <= 0:
            return 0.0
        return self.bytes_written / self.bytes_on_disk

    # ------------------------------------------------------------------
    # Combination and output

    def merge(self, other):
        """Add `other`'s counters into this object (in place).

        ``jobs``, ``chunk_size`` and ``writer_block`` are
        configuration, not counters: the merged object keeps the
        wider/larger of the two.
        """
        for f in fields(self):
            if f.name == "engine":
                self.engine = self.engine or other.engine
            elif f.name in ("jobs", "chunk_size", "writer_block"):
                setattr(
                    self, f.name, max(getattr(self, f.name), getattr(other, f.name))
                )
            else:
                setattr(
                    self, f.name, getattr(self, f.name) + getattr(other, f.name)
                )
        return self

    def to_dict(self):
        """All counters plus the derived rates, JSON-ready."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["ingest_rate"] = self.ingest_rate
        out["cache_hit_rate"] = self.cache_hit_rate
        out["compression_ratio"] = self.compression_ratio
        return out

    @classmethod
    def from_dict(cls, data):
        """Rehydrate from :meth:`to_dict` output (or any superset).

        Derived rates and unknown keys are ignored, so a snapshot that
        travelled through JSON — e.g. a monitor snapshot or the
        ``pipeline`` block of :func:`repro.core.export.to_json` —
        round-trips to an equal object.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def report(self):
        """The human-readable counter table (``--stats`` output)."""
        lines = [
            "pipeline stats:",
            f"  entries recorded:  {self.entries_recorded}",
            f"  entries ingested:  {self.entries_ingested}",
            f"  entries dropped:   {self.entries_dropped}"
            "   (log full at record time)",
            f"  entries dismissed: {self.entries_dismissed}"
            "   (unmatched returns)",
            f"  frames truncated:  {self.frames_truncated}",
            f"  blocks flushed:    {self.blocks_flushed}"
            + (
                f"   ({self.writer_block} entries/block)"
                if self.writer_block
                else ""
            ),
            f"  chunks processed:  {self.chunks_processed}"
            + (f"   ({self.chunk_size} entries/chunk)" if self.chunk_size else ""),
            f"  shards analyzed:   {self.shards_analyzed}"
            f"   (jobs={self.jobs})"
            + (f" (engine={self.engine})" if self.engine else ""),
            f"  shards vectorised: {self.shards_vectorised}"
            f"   ({self.shards_fallback} fell back)",
            f"  recovery:          {self.entries_salvaged} salvaged, "
            f"{self.entries_quarantined} quarantined "
            f"({self.segments_sealed} sealed segments, "
            f"{self.crc_failures} CRC failures)",
            f"  bytes:             {self.bytes_written} written, "
            f"{self.bytes_on_disk} on disk"
            + (
                f"   ({self.compression_ratio:.2f}x compression)"
                if self.bytes_on_disk
                else ""
            ),
            f"  ingest rate:       {self.ingest_rate:.3f} entries/tick",
            f"  symbol cache:      {100 * self.cache_hit_rate:.1f}% hits "
            f"({self.cache_hits} hits, {self.cache_misses} misses)",
        ]
        return "\n".join(lines)

    def __str__(self):
        return self.report()
