"""Stage 2 — the recorder.

The recorder wrapper is the run-time half of TEE-Perf: it sets up the
shared-memory log between the measured application (inside the TEE) and
itself (native, on the host), starts the software counter, announces
the log through the instrumented program's hook slot (the paper's
globally accessible variable), and persists the log afterwards.

Two recorders share that lifecycle:

* :class:`Recorder` — simulation mode, used by the evaluation.  The
  counter is the virtual clock (its loop still costs a core) and every
  instrumentation event charges the platform's per-event cycles.
* :class:`LiveRecorder` — live mode for real Python programs: a real
  counter thread and wall-clock-free logging.

Note that the shared log lives in *untrusted host memory*: it is never
charged against the enclave's EPC, exactly as §II-B requires ("it
should not increase the TEE's memory, which is usually limited").
"""

import os

from repro.core.counter import ThreadCounter, VirtualCounter
from repro.core.errors import RecorderError
from repro.core.instrument import LiveHooks, SimHooks
from repro.core.log import DEFAULT_WRITER_BLOCK, SharedLog, VERSION
from repro.core.stats import PipelineStats

DEFAULT_CAPACITY = 1 << 20  # entries
DEFAULT_PID = 4242


class _RecorderBase:
    """Shared lifecycle: idle -> started -> stopped.

    An optional :class:`repro.monitor.Monitor` can be handed in; the
    recorder then attaches live samplers for itself and its counter on
    ``start`` (replacing any previous run's, so re-recording under the
    same monitor is idempotent) and takes one final sampling pass on
    ``stop`` so the series capture the terminal state.
    """

    def __init__(
        self,
        program,
        capacity,
        pid,
        version=VERSION,
        monitor=None,
        writer_block=0,
        sealed=False,
        options=None,
    ):
        # A RecordOptions object is the one-stop configuration: when
        # given, it supplies capacity/pid/version/writer_block/sealed
        # and the event mask, overriding the individual kwargs.
        if options is not None:
            capacity = options.capacity
            pid = options.pid
            version = options.version
            writer_block = options.writer_block
            sealed = options.sealed
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        if writer_block < 0:
            raise ValueError(
                f"writer_block must be >= 0: {writer_block}"
            )
        self.program = program
        self.capacity = capacity
        self.pid = pid
        self.version = version
        self.monitor = monitor
        self.writer_block = writer_block
        self.sealed = sealed
        self.options = options
        self.log = None
        self.loaded = None
        self.hooks = None
        self._started = False

    def start(self):
        """Map the shared memory, arm the hooks, start the counter."""
        if self._started:
            raise RecorderError("recorder already started")
        self.loaded = self.program.image.load(self._aslr_seed())
        self.log = SharedLog.create(
            self.capacity,
            pid=self.pid,
            profiler_addr=self.loaded.profiler_addr,
            version=self.version,
            sealed=self.sealed,
        )
        if self.options is not None and not (
            self.options.calls and self.options.rets
        ):
            self.log.set_event_mask(
                calls=self.options.calls, rets=self.options.rets
            )
        self._start_counter()
        self.hooks = self._make_hooks()
        self.program.hooks.arm(self.hooks, self.loaded.offset)
        self.log.set_active(True)
        self._started = True
        if self.monitor is not None:
            self._attach_monitor(self.monitor)
            self.monitor.poll_once()

    def stop(self):
        """Stop recording and detach from the application."""
        if not self._started:
            raise RecorderError("recorder not started")
        self.log.set_active(False)
        self.program.hooks.disarm()
        # Staged-but-unflushed blocks commit before the tail is stored:
        # events accepted at staging time are never lost to teardown.
        self.hooks.flush()
        self._stop_counter()
        self.log._store_tail()
        # A clean stop leaves the whole committed extent sealed: any
        # region still unsealed in a snapshot therefore belongs to a
        # run that crashed, which is exactly what recovery quarantines.
        if self.log.sealed:
            self.log.seal_remainder()
        self._started = False
        if self.monitor is not None:
            self.monitor.poll_once()

    def _attach_monitor(self, monitor):
        """Attach this recorder's live sources to `monitor`."""
        from repro.monitor import CounterSampler, RecorderSampler

        monitor.attach(RecorderSampler(self))
        monitor.attach(CounterSampler(self.counter))

    def pause(self):
        """Dynamically deactivate tracing (flags stay writable while
        the application runs — §II-B)."""
        self._require_started()
        self.log.set_active(False)
        # Committing staged blocks here keeps a pause -> inspect cycle
        # honest: everything accepted so far is visible in the log.
        self.hooks.flush()
        if self.log.sealed:
            self.log._store_tail()
            self.log.seal_remainder()

    def resume(self):
        """Re-activate tracing."""
        self._require_started()
        self.log.set_active(True)

    def persist(self, path, compress=False):
        """Write the entire log to persistent storage for the analyzer.

        With ``compress=True`` the image is written in the rev 1.2
        columnar format (:func:`repro.core.columnar.encode_log`) —
        typically 3–5× smaller; ``open_log()`` and the analyzer read
        either format transparently.  Returns the bytes written.
        """
        if self.log is None:
            raise RecorderError("nothing recorded yet")
        if self.hooks is not None:
            self.hooks.flush()
        if compress:
            from repro.core.columnar import encode_log

            image = encode_log(self.log)
            with open(path, "wb") as fh:
                fh.write(image)
            written = len(image)
        else:
            self.log.dump(path)
            written = os.path.getsize(path)
        self._bytes_on_disk = written
        return written

    def events_recorded(self):
        return len(self.log) if self.log is not None else 0

    def events_dropped(self):
        return self.log.dropped if self.log is not None else 0

    def pipeline_stats(self):
        """Recorder-side pipeline counters, ready for the analyzer to
        extend: what reached the log, and what was lost *before*
        analysis even starts (events dropped when the log's
        reservation counter overflowed, including staged events whose
        block straddled the capacity boundary at flush)."""
        pool = getattr(self.hooks, "pool", None)
        return PipelineStats(
            entries_recorded=self.events_recorded(),
            entries_dropped=self.events_dropped(),
            blocks_flushed=pool.blocks_flushed() if pool else 0,
            writer_block=self.writer_block,
            bytes_written=(
                self.events_recorded() * self.log.entry_size
                if self.log is not None
                else 0
            ),
            bytes_on_disk=getattr(self, "_bytes_on_disk", 0),
        )

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        if self._started:
            self.stop()
        return False

    def _require_started(self):
        if not self._started:
            raise RecorderError("recorder not started")

    def _aslr_seed(self):
        return 1

    def _start_counter(self):
        raise NotImplementedError

    def _stop_counter(self):
        raise NotImplementedError

    def _make_hooks(self):
        raise NotImplementedError


class Recorder(_RecorderBase):
    """Simulation-mode recorder: virtual counter, per-event cycle cost.

    Parameters
    ----------
    machine, env:
        The simulated machine and the environment the application runs
        in; the per-event instrumentation cost comes from the
        environment's platform (it is higher inside an enclave, where
        the entry write crosses to untrusted memory).
    """

    def __init__(
        self,
        machine,
        env,
        program,
        capacity=DEFAULT_CAPACITY,
        pid=DEFAULT_PID,
        counter=None,
        aslr_seed=1,
        version=VERSION,
        monitor=None,
        writer_block=0,
        sealed=False,
        options=None,
    ):
        # Simulation defaults to the per-event path (writer_block=0):
        # regenerated figures stay byte-deterministic regardless of
        # batching.  Pass writer_block>0 to exercise the batched path.
        super().__init__(
            program, capacity, pid, version, monitor, writer_block,
            sealed, options,
        )
        self.machine = machine
        self.env = env
        self.counter = counter or VirtualCounter(machine)
        self._seed = aslr_seed

    def _attach_monitor(self, monitor):
        from repro.monitor import TeeCostSampler

        super()._attach_monitor(monitor)
        monitor.attach(TeeCostSampler(self.env))

    def _aslr_seed(self):
        return self._seed

    def _start_counter(self):
        self.counter.start()

    def _stop_counter(self):
        self.counter.stop()

    def _make_hooks(self):
        return SimHooks(
            self.log,
            self.counter,
            self.machine,
            self.env.costs.instrument_event_cycles,
            writer_block=self.writer_block,
        )


class LiveRecorder(_RecorderBase):
    """Live-mode recorder for real Python programs.

    While recording, the interpreter's thread-switch interval is
    lowered so the software-counter thread is scheduled often enough to
    give the counter useful resolution despite the GIL; the previous
    interval is restored at stop.
    """

    SWITCH_INTERVAL = 0.0005

    def __init__(
        self,
        program,
        capacity=DEFAULT_CAPACITY,
        pid=DEFAULT_PID,
        counter=None,
        version=VERSION,
        monitor=None,
        writer_block=DEFAULT_WRITER_BLOCK,
        sealed=False,
        options=None,
    ):
        # Live mode defaults to batched per-thread writers: real wall
        # clock is on the line, so the amortised path is the default.
        super().__init__(
            program, capacity, pid, version, monitor, writer_block,
            sealed, options,
        )
        self.counter = counter or ThreadCounter()
        self._saved_interval = None

    def _start_counter(self):
        import sys

        self._saved_interval = sys.getswitchinterval()
        sys.setswitchinterval(self.SWITCH_INTERVAL)
        self.counter.start()

    def _stop_counter(self):
        import sys

        self.counter.stop()
        if self._saved_interval is not None:
            sys.setswitchinterval(self._saved_interval)
            self._saved_interval = None

    def _make_hooks(self):
        return LiveHooks(
            self.log, self.counter, writer_block=self.writer_block
        )
