"""Differential profiling: compare two analyses of the same program.

This is the workflow of the paper's SPDK case study (§IV-C): profile,
optimise, profile again, and *see* where the time went.  The diff works
on per-method shares of total traced time (runs of different lengths
compare cleanly), and the differential flame graph colours the "after"
graph by change — red where a method's share grew, blue where it
shrank, Brendan Gregg's red/blue convention.
"""

from dataclasses import dataclass

from repro.core.flamegraph import FlameGraph

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in-tree
    _np = None


@dataclass(frozen=True)
class MethodDelta:
    """One method's movement between two profiles."""

    method: str
    before_share: float
    after_share: float
    before_calls: int
    after_calls: int

    @property
    def delta(self):
        """Share change in percentage points (negative = improved)."""
        return self.after_share - self.before_share

    @property
    def appeared(self):
        return self.before_calls == 0 and self.after_calls > 0

    @property
    def vanished(self):
        return self.before_calls > 0 and self.after_calls == 0


def _shares(analysis):
    total = analysis.total_exclusive() or 1
    return {
        stats.method: (stats.exclusive / total, stats.calls)
        for stats in analysis.methods()
    }


def _aligned_rows(profile):
    """A profile's per-method arrays aligned to a shared intern table
    (``table``/``names``/``exclusive``/``calls``/``present``), or
    ``None`` when the profile doesn't expose them."""
    rows = getattr(profile, "_aligned_method_rows", None)
    return rows() if callable(rows) else None


def _pad(arr, n):
    if len(arr) == n:
        return arr
    out = _np.zeros(n, dtype=arr.dtype)
    out[: len(arr)] = arr
    return out


def _aligned_deltas(b, a):
    """Vectorised delta computation over method arrays that share one
    intern table — both share vectors come from two array divisions
    instead of two full path walks."""
    n = max(len(b.exclusive), len(a.exclusive))
    b_excl, a_excl = _pad(b.exclusive, n), _pad(a.exclusive, n)
    b_calls, a_calls = _pad(b.calls, n), _pad(a.calls, n)
    present = _pad(b.present, n) | _pad(a.present, n)
    b_share = b_excl / (int(b_excl.sum()) or 1)
    a_share = a_excl / (int(a_excl.sum()) or 1)
    names = b.names
    ids = sorted(_np.flatnonzero(present).tolist(),
                 key=names.__getitem__)
    return [
        MethodDelta(names[i], float(b_share[i]), float(a_share[i]),
                    int(b_calls[i]), int(a_calls[i]))
        for i in ids
    ]


class AnalysisDiff:
    """All method deltas between a *before* and an *after* profile.

    Two construction paths produce identical deltas: profiles that
    expose aligned per-method arrays over a *shared* intern table
    (``_aligned_method_rows``, e.g. two fleet window snapshots of one
    tenant) are compared with vectorised share arithmetic; everything
    else goes through the per-method dict walk.
    """

    def __init__(self, before, after):
        self.before = before
        self.after = after
        b_rows = _aligned_rows(before)
        a_rows = _aligned_rows(after)
        if (
            b_rows is not None
            and a_rows is not None
            and b_rows.table is a_rows.table
        ):
            self._deltas = _aligned_deltas(b_rows, a_rows)
        else:
            before_shares = _shares(before)
            after_shares = _shares(after)
            self._deltas = []
            for method in sorted(set(before_shares) | set(after_shares)):
                b_share, b_calls = before_shares.get(method, (0.0, 0))
                a_share, a_calls = after_shares.get(method, (0.0, 0))
                self._deltas.append(
                    MethodDelta(method, b_share, a_share, b_calls,
                                a_calls)
                )
        self._by_method = {d.method: d for d in self._deltas}

    def deltas(self):
        """All deltas, largest absolute share change first."""
        return sorted(self._deltas, key=lambda d: -abs(d.delta))

    def improvements(self, n=10):
        """Methods whose share shrank the most."""
        shrunk = [d for d in self._deltas if d.delta < 0]
        return sorted(shrunk, key=lambda d: d.delta)[:n]

    def regressions(self, n=10):
        """Methods whose share grew the most."""
        grown = [d for d in self._deltas if d.delta > 0]
        return sorted(grown, key=lambda d: -d.delta)[:n]

    def delta_for(self, method):
        try:
            return self._by_method[method]
        except KeyError:
            raise KeyError(
                f"{method!r} appears in neither profile"
            ) from None

    def report(self, top=15):
        lines = [
            "differential profile (exclusive-time shares)",
            f"{'before':>9} {'after':>9} {'change':>9}  method",
        ]
        for delta in self.deltas()[:top]:
            marker = ""
            if delta.vanished:
                marker = "  [gone]"
            elif delta.appeared:
                marker = "  [new]"
            lines.append(
                f"{delta.before_share:>8.2%} {delta.after_share:>8.2%} "
                f"{delta.delta:>+8.2%}  {delta.method}{marker}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------

    def flamegraph(self, title="differential flame graph"):
        """The *after* flame graph coloured by share change."""
        before_graph = FlameGraph.from_analysis(self.before)
        after_graph = FlameGraph.from_analysis(self.after, title=title)
        before_incl = _inclusive_shares(before_graph)
        after_incl = _inclusive_shares(after_graph)

        def palette(node):
            before = before_incl.get(node.name)
            if before is None:
                return "rgb(230,60,60)"  # new code: strong red
            drift = after_incl.get(node.name, 0.0) - before
            if abs(drift) < 0.005:
                return "rgb(212,212,212)"  # unchanged: grey
            intensity = min(1.0, abs(drift) * 4)
            level = int(235 - 110 * intensity)
            if drift > 0:
                return f"rgb(235,{level},{level})"  # grew: red
            return f"rgb({level},{level},235)"  # shrank: blue

        after_graph.palette = palette
        return after_graph


def _inclusive_shares(graph):
    """Summed inclusive share per frame name across the whole graph
    (the graph memoises the underlying totals, so the walk happens at
    most once per graph)."""
    total = graph.root.total or 1
    return {
        name: value / total
        for name, value in graph.inclusive_totals().items()
    }
