"""Stage 1 — the "compiler" pass.

The paper recompiles the application with ``-finstrument-functions``
and ``--include=profiler.h``: every function gains calls to
``__cyg_profile_func_enter``/``__cyg_profile_func_exit`` and the
injected code writes log entries through a globally accessible pointer
to the shared memory the recorder later maps in.

Here the compilation unit is Python: the instrumenter rewrites the
functions of a module (or the methods of an object) into thin wrappers
that invoke enter/exit hooks around the original, lays every function
out in a simulated :class:`~repro.symbols.BinaryImage`, and leaves a
*hook slot* — the global variable through which the recorder announces
the shared memory once it exists.  Until the recorder arms the slot the
wrappers are pass-through, exactly like instrumented code running
without the profiler library.

Supported paper features:

* ``@no_instrument`` — ``__attribute__((no_instrument_function))``;
* ``@symbol("ns::Class::method()")`` — controls the linker name laid
  out in the image (the reproduction's stand-in for the real mangler
  run by gcc);
* *selective code profiling* — a ``select`` predicate restricts which
  functions get instrumented at all, shrinking both overhead and log
  size (§II-C).
"""

import functools
import inspect
import threading

from repro.core.errors import TEEPerfError
from repro.core.log import KIND_CALL, KIND_RET, ThreadLogWriter
from repro.symbols import BinaryImage, mangle

_NO_INSTRUMENT = "__tee_no_instrument__"
_SYMBOL = "__tee_symbol__"


def no_instrument(func):
    """Exclude `func` from instrumentation (keeps the injected code
    from measuring itself, among other uses)."""
    setattr(func, _NO_INSTRUMENT, True)
    return func


def symbol(pretty_name):
    """Give `func` an explicit native-style symbol name."""

    def mark(func):
        setattr(func, _SYMBOL, pretty_name)
        return func

    return mark


def symbol_name_for(func, prefix=None):
    """The pretty symbol name a function will carry in the image."""
    explicit = getattr(func, _SYMBOL, None)
    if explicit is not None:
        return explicit
    qualname = func.__qualname__
    if "<locals>." in qualname:
        qualname = qualname.rsplit("<locals>.", 1)[1]
    qualname = qualname.replace(".", "::")
    if prefix:
        return f"{prefix}::{qualname}"
    return qualname


class HookSlot:
    """The globally accessible variable of the paper's injected code.

    Wrappers read :attr:`impl` once per invocation; the recorder arms
    it at start-up and clears it at teardown.  ``offset`` is the
    relocation offset of the loaded image.  Instead of adding it to
    the link-time address on every event, each wrapper registers an
    *address cell* at instrumentation time and :meth:`arm` precomputes
    ``link_addr + offset`` into every cell — the hot path reads one
    list slot and never does relocation arithmetic.
    """

    __slots__ = ("impl", "offset", "_cells")

    def __init__(self):
        self.impl = None
        self.offset = 0
        self._cells = []

    def register(self, link_addr):
        """A one-slot runtime-address cell for a wrapper closure.

        Holds the link-time address until :meth:`arm` relocates it.
        """
        cell = [link_addr]
        self._cells.append((link_addr, cell))
        return cell

    def arm(self, impl, offset=0):
        if offset != self.offset:
            for link_addr, cell in self._cells:
                cell[0] = link_addr + offset
        self.offset = offset
        # impl is published last: a wrapper that observes it armed is
        # guaranteed to read already-relocated address cells.
        self.impl = impl

    def disarm(self):
        self.impl = None
        if self.offset:
            for link_addr, cell in self._cells:
                cell[0] = link_addr
        self.offset = 0


class InstrumentedFunction:
    """Book-keeping for one rewritten function."""

    def __init__(self, pretty, link_addr, original, wrapper, restore):
        self.pretty = pretty
        self.link_addr = link_addr
        self.original = original
        self.wrapper = wrapper
        self._restore = restore

    def restore(self):
        self._restore()


class InstrumentedProgram:
    """The output of the compiler pass: image + rewritten functions."""

    def __init__(self, name):
        self.name = name
        self.image = BinaryImage(name)
        self.hooks = HookSlot()
        self.functions = []
        self._by_pretty = {}

    def function(self, pretty):
        return self._by_pretty[pretty]

    def link_addr(self, pretty):
        return self._by_pretty[pretty].link_addr

    def restore_all(self):
        """Undo every module/instance patch (compiler clean build)."""
        for fn in self.functions:
            fn.restore()

    def _register(self, instrumented):
        self.functions.append(instrumented)
        self._by_pretty[instrumented.pretty] = instrumented

    def __repr__(self):
        return (
            f"InstrumentedProgram({self.name!r}, "
            f"{len(self.functions)} functions)"
        )


def _function_size(func):
    """Our stand-in for machine-code size: the bytecode length."""
    code = getattr(func, "__code__", None)
    return max(16, len(code.co_code)) if code is not None else 16


def _make_wrapper(func, link_addr, hooks):
    # The armed impl is captured ONCE per invocation: the CALL and its
    # RET always go to the same hooks object, so a recorder disarming
    # (or arming) mid-call can never log one half of the pair — the
    # analyzer sees balanced per-thread logs, with ACTIVE alone
    # deciding whether either event lands.  The runtime address comes
    # from a cell the slot relocates at arm time, so the hot path is
    # two list-index reads and no arithmetic.
    cell = hooks.register(link_addr)

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        impl = hooks.impl
        if impl is None:
            return func(*args, **kwargs)
        addr = cell[0]
        impl.on_event(KIND_CALL, addr)
        try:
            return func(*args, **kwargs)
        finally:
            impl.on_event(KIND_RET, addr)

    setattr(wrapper, _NO_INSTRUMENT, True)  # never instrument twice
    wrapper.__tee_wrapped__ = func
    return wrapper


class Instrumenter:
    """Rewrites functions to call the profiler hooks.

    Parameters
    ----------
    name:
        Name of the produced binary image.
    select:
        Optional predicate on the *pretty* symbol name; functions for
        which it returns False are left untouched (selective code
        profiling).
    """

    def __init__(self, name="a.out", select=None):
        self.program = InstrumentedProgram(name)
        self.select = select

    # ------------------------------------------------------------------

    def instrument_function(self, func, owner, attr, prefix=None):
        """Instrument one function living at ``owner.attr``."""
        if getattr(func, _NO_INSTRUMENT, False):
            return None
        pretty = symbol_name_for(func, prefix)
        if self.select is not None and not self.select(pretty):
            return None
        if pretty in self.program._by_pretty:
            raise TEEPerfError(f"duplicate symbol {pretty!r}")
        link_addr = self.program.image.add_function(
            mangle(pretty),
            size=_function_size(func),
            file=getattr(func, "__module__", None),
            line=getattr(
                getattr(func, "__code__", None), "co_firstlineno", None
            ),
        )
        wrapper = _make_wrapper(func, link_addr, self.program.hooks)

        def restore(owner=owner, attr=attr, func=func):
            setattr(owner, attr, func)

        setattr(owner, attr, wrapper)
        instrumented = InstrumentedFunction(
            pretty, link_addr, func, wrapper, restore
        )
        self.program._register(instrumented)
        return instrumented

    def instrument_module(self, module, prefix=None):
        """Instrument every function defined in `module` (one
        compilation unit, as with ``--include`` in the paper)."""
        count = 0
        for attr, value in sorted(vars(module).items()):
            if not inspect.isfunction(value):
                continue
            if value.__module__ != module.__name__:
                continue  # imported, not defined here
            if self.instrument_function(value, module, attr, prefix):
                count += 1
        return count

    def instrument_instance(self, obj, prefix=None):
        """Instrument the methods of one object (bound, so recursive
        self-calls go through the wrappers)."""
        count = 0
        for attr in sorted(dir(type(obj))):
            if attr.startswith("_"):
                # Underscore-private helpers are treated as inlined
                # static functions: the real compiler pass does not see
                # them as call/return sites once inlined.
                continue
            value = getattr(type(obj), attr, None)
            if not inspect.isfunction(value):
                continue
            bound = value.__get__(obj, type(obj))
            if self.instrument_function(bound, obj, attr, prefix):
                count += 1
        return count

    def instrument_class(self, cls, prefix=None):
        """Instrument the methods of a class itself.

        Unlike :meth:`instrument_instance`, the patch lands on the
        class, so *every* instance (present and future) calls through
        the wrappers and the symbol is laid out exactly once — the
        right model for a library like a storage engine, where one
        compiled function serves many objects.
        """
        count = 0
        for attr, value in sorted(vars(cls).items()):
            if attr.startswith("_"):
                continue
            if not inspect.isfunction(value):
                continue
            if self.instrument_function(value, cls, attr, prefix):
                count += 1
        return count

    def finish(self):
        """Return the finished program (the "linked" binary)."""
        if not self.program.functions:
            raise TEEPerfError("nothing was instrumented")
        return self.program


class _WriterPool:
    """Per-thread :class:`~repro.core.log.ThreadLogWriter` bookkeeping
    shared by both hook implementations.

    A hooks object is shared by every thread, so the batched path
    keys writers by thread id; the last ``(tid, writer)`` pair is
    cached because the overwhelmingly common case is a run of events
    from one thread.
    """

    __slots__ = ("log", "writer_block", "_writers", "_last")

    def __init__(self, log, writer_block):
        self.log = log
        self.writer_block = writer_block
        self._writers = {}
        # (tid, writer) published as one tuple: concurrent threads can
        # race on the cache but never observe a torn pair.
        self._last = (None, None)

    def writer_for(self, tid):
        last_tid, last_writer = self._last
        if tid == last_tid:
            return last_writer
        writer = self._writers.get(tid)
        if writer is None:
            writer = self._writers.setdefault(
                tid, ThreadLogWriter(self.log, self.writer_block)
            )
        self._last = (tid, writer)
        return writer

    def flush(self):
        """Commit every thread's staged block (recorder stop/pause)."""
        for writer in list(self._writers.values()):
            writer.flush()

    def writers(self):
        return list(self._writers.values())

    def blocks_flushed(self):
        return sum(w.blocks_flushed for w in self._writers.values())


class SimHooks:
    """Injected-code implementation for simulation mode.

    Every event charges the platform's per-event instrumentation cost
    to the running simulated thread, reads the virtual software
    counter, and appends to the shared log with the *relaxed*
    reservation (per-thread ordering is all the analyzer needs).  With
    ``writer_block > 0`` events go through per-thread
    :class:`~repro.core.log.ThreadLogWriter` staging instead of
    per-event appends — same per-thread bytes, amortised reservation.
    """

    __slots__ = ("log", "counter", "machine", "event_cycles", "events",
                 "pool", "_read", "_current")

    def __init__(self, log, counter, machine, event_cycles,
                 writer_block=0):
        self.log = log
        self.counter = counter
        self.machine = machine
        self.event_cycles = event_cycles
        self.events = 0
        self.pool = (
            _WriterPool(log, writer_block) if writer_block else None
        )
        self._read = counter.read
        self._current = machine.current

    def on_event(self, kind, addr):
        if not self.log.active:
            return
        thread = self._current()
        thread.advance(self.event_cycles)
        self.events += 1
        if self.pool is not None:
            self.pool.writer_for(thread.tid).append(
                kind, self._read(), addr, thread.tid
            )
        else:
            self.log.append(kind, self._read(), addr, thread.tid)

    def flush(self):
        if self.pool is not None:
            self.pool.flush()


class LiveHooks:
    """Injected-code implementation for live (real-time) mode.

    ``threading.get_ident`` and ``counter.read`` are bound once at
    construction — the per-event path does no global/attribute-chain
    lookups — and ``writer_block > 0`` (the live default, via
    :class:`~repro.core.recorder.LiveRecorder`) batches entries
    through per-thread writers.
    """

    __slots__ = ("log", "counter", "events", "pool", "_read",
                 "_get_ident")

    def __init__(self, log, counter, writer_block=0):
        self.log = log
        self.counter = counter
        self.events = 0
        self.pool = (
            _WriterPool(log, writer_block) if writer_block else None
        )
        self._read = counter.read
        self._get_ident = threading.get_ident

    def on_event(self, kind, addr):
        if not self.log.active:
            return
        self.events += 1
        tid = self._get_ident()
        if self.pool is not None:
            self.pool.writer_for(tid).append(
                kind, self._read(), addr, tid
            )
        else:
            self.log.append(kind, self._read(), addr, tid)

    def flush(self):
        if self.pool is not None:
            self.pool.flush()
