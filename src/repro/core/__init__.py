"""TEE-Perf itself: the paper's four-stage profiler.

* stage 1 — :mod:`repro.core.instrument`: the compiler pass;
* stage 2 — :mod:`repro.core.recorder` + :mod:`repro.core.counter` +
  :mod:`repro.core.log`: the run-time recorder, software counter and
  shared-memory log (Figure 2);
* stage 3 — :mod:`repro.core.analyzer` + :mod:`repro.core.query`: the
  offline analyzer and its declarative query interface;
* stage 4 — :mod:`repro.core.flamegraph`: Flame Graph output.

:class:`~repro.core.profiler.TEEPerf` ties the stages together.

The user-facing classes — TEEPerf, Analyzer, Recorder, LiveRecorder,
SharedLog, FlameGraph, open_log — now live behind :mod:`repro.api`;
importing them from this package still works but emits a
:class:`DeprecationWarning` naming the replacement.  The supporting
cast (constants, column codecs, counters, exporters, markers) keeps
its home here.
"""

from repro.core.analyzer import Analysis, CallRecord, MethodStats
from repro.core.diff import AnalysisDiff, MethodDelta
from repro.core.reconstruct import (
    RecordColumns,
    reconstruct_python,
    reconstruct_vector,
)
from repro.core.export import (
    to_callgrind,
    to_gprof,
    to_json,
    to_metrics,
    to_speedscope,
)
from repro.core.stats import PipelineStats
from repro.core.counter import (
    PerfCounterClock,
    ThreadCounter,
    VirtualCounter,
)
from repro.core.errors import (
    AnalyzerError,
    LogFormatError,
    RecorderError,
    RecoveryError,
    TEEPerfError,
)
from repro.core.flamegraph import fold_stacks
from repro.core.instrument import (
    Instrumenter,
    InstrumentedProgram,
    no_instrument,
    symbol,
)
from repro.core.log import (
    DEFAULT_CHUNK_ENTRIES,
    DEFAULT_MMAP_THRESHOLD,
    DEFAULT_WRITER_BLOCK,
    ENTRY_SIZE,
    HEADER_SIZE,
    KIND_CALL,
    KIND_RET,
    LogColumns,
    LogEntry,
    LogStream,
    ThreadLogWriter,
    decode_columns,
)
from repro.core.query import QuerySession

#: Deprecated package re-exports: name -> home module.
_DEPRECATED = {
    "Analyzer": "repro.core.analyzer",
    "FlameGraph": "repro.core.flamegraph",
    "LiveRecorder": "repro.core.recorder",
    "Recorder": "repro.core.recorder",
    "SharedLog": "repro.core.log",
    "TEEPerf": "repro.core.profiler",
    "open_log": "repro.core.log",
}


def __getattr__(name):
    home = _DEPRECATED.get(name)
    if home is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib
    import warnings

    warnings.warn(
        f"importing {name!r} from repro.core is deprecated; use "
        f"repro.api.{name} (or {home}.{name}) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(home), name)


__all__ = [
    "Analysis",
    "AnalysisDiff",
    "Analyzer",
    "AnalyzerError",
    "MethodDelta",
    "to_callgrind",
    "to_gprof",
    "to_json",
    "to_metrics",
    "to_speedscope",
    "CallRecord",
    "DEFAULT_CHUNK_ENTRIES",
    "DEFAULT_MMAP_THRESHOLD",
    "DEFAULT_WRITER_BLOCK",
    "ENTRY_SIZE",
    "FlameGraph",
    "HEADER_SIZE",
    "Instrumenter",
    "InstrumentedProgram",
    "KIND_CALL",
    "KIND_RET",
    "LiveRecorder",
    "LogColumns",
    "LogEntry",
    "LogFormatError",
    "LogStream",
    "MethodStats",
    "PerfCounterClock",
    "PipelineStats",
    "QuerySession",
    "RecordColumns",
    "Recorder",
    "RecorderError",
    "RecoveryError",
    "reconstruct_python",
    "reconstruct_vector",
    "SharedLog",
    "TEEPerf",
    "TEEPerfError",
    "ThreadCounter",
    "ThreadLogWriter",
    "VirtualCounter",
    "decode_columns",
    "fold_stacks",
    "no_instrument",
    "open_log",
    "symbol",
]
