"""TEE-Perf itself: the paper's four-stage profiler.

* stage 1 — :mod:`repro.core.instrument`: the compiler pass;
* stage 2 — :mod:`repro.core.recorder` + :mod:`repro.core.counter` +
  :mod:`repro.core.log`: the run-time recorder, software counter and
  shared-memory log (Figure 2);
* stage 3 — :mod:`repro.core.analyzer` + :mod:`repro.core.query`: the
  offline analyzer and its declarative query interface;
* stage 4 — :mod:`repro.core.flamegraph`: Flame Graph output.

:class:`TEEPerf` ties the stages together.
"""

from repro.core.analyzer import Analysis, Analyzer, CallRecord, MethodStats
from repro.core.diff import AnalysisDiff, MethodDelta
from repro.core.reconstruct import (
    RecordColumns,
    reconstruct_python,
    reconstruct_vector,
)
from repro.core.export import (
    to_callgrind,
    to_gprof,
    to_json,
    to_metrics,
    to_speedscope,
)
from repro.core.stats import PipelineStats
from repro.core.counter import (
    PerfCounterClock,
    ThreadCounter,
    VirtualCounter,
)
from repro.core.errors import (
    AnalyzerError,
    LogFormatError,
    RecorderError,
    TEEPerfError,
)
from repro.core.flamegraph import FlameGraph, fold_stacks
from repro.core.instrument import (
    Instrumenter,
    InstrumentedProgram,
    no_instrument,
    symbol,
)
from repro.core.log import (
    DEFAULT_CHUNK_ENTRIES,
    DEFAULT_MMAP_THRESHOLD,
    DEFAULT_WRITER_BLOCK,
    ENTRY_SIZE,
    HEADER_SIZE,
    KIND_CALL,
    KIND_RET,
    LogColumns,
    LogEntry,
    LogStream,
    SharedLog,
    ThreadLogWriter,
    decode_columns,
    open_log,
)
from repro.core.profiler import TEEPerf
from repro.core.query import QuerySession
from repro.core.recorder import LiveRecorder, Recorder

__all__ = [
    "Analysis",
    "AnalysisDiff",
    "Analyzer",
    "AnalyzerError",
    "MethodDelta",
    "to_callgrind",
    "to_gprof",
    "to_json",
    "to_metrics",
    "to_speedscope",
    "CallRecord",
    "DEFAULT_CHUNK_ENTRIES",
    "DEFAULT_MMAP_THRESHOLD",
    "DEFAULT_WRITER_BLOCK",
    "ENTRY_SIZE",
    "FlameGraph",
    "HEADER_SIZE",
    "Instrumenter",
    "InstrumentedProgram",
    "KIND_CALL",
    "KIND_RET",
    "LiveRecorder",
    "LogColumns",
    "LogEntry",
    "LogFormatError",
    "LogStream",
    "MethodStats",
    "PerfCounterClock",
    "PipelineStats",
    "QuerySession",
    "RecordColumns",
    "Recorder",
    "RecorderError",
    "reconstruct_python",
    "reconstruct_vector",
    "SharedLog",
    "TEEPerf",
    "TEEPerfError",
    "ThreadCounter",
    "ThreadLogWriter",
    "VirtualCounter",
    "decode_columns",
    "fold_stacks",
    "no_instrument",
    "open_log",
    "symbol",
]
