"""Frozen option objects for the public surface.

Four PRs of organic growth scattered knob kwargs (``writer_block``,
``jobs``, ``chunk_size``, ``engine``, …) across the recorder, the
analyzer, :func:`repro.phoenix.runner.run_teeperf` and three CLI
subcommands — each redeclaring its own defaults.  These two frozen
dataclasses are now the single definition:

* :class:`RecordOptions` — everything that shapes a recording (log
  capacity, batched-writer block size, sealed segments, event mask);
* :class:`AnalyzeOptions` — everything that shapes an analysis pass
  (shard-pool width, ingestion chunk size, reconstruction engine,
  recovery mode).

The CLI builds its flags from the same definition via
:func:`add_record_arguments` / :func:`add_analyze_arguments`, so
``demo``, ``monitor``, ``analyze`` and ``recover`` can no longer
drift apart.  Plain kwargs keep working everywhere an options object
is accepted — the object wins only where it was explicitly passed.
"""

from dataclasses import dataclass, replace

from repro.core.log import VERSION, _ENTRY_SIZES
from repro.core.reconstruct import ENGINES
from repro.core.recovery import RECOVER_MODES

_DEFAULT_CAPACITY = 1 << 20  # entries — mirrors the recorder's default


@dataclass(frozen=True)
class RecordOptions:
    """How a recording is made.

    Attributes
    ----------
    capacity:
        Shared-log size in entries, fixed at creation (paper §II-B).
    writer_block:
        Entries per batched per-thread staging block; 0 keeps the
        per-event append path (byte-deterministic simulated runs).
    sealed:
        Crash-consistent sealed segments: committed blocks carry a
        CRC32 seal record and the header's watermark advances (see
        ``docs/log-format.md``).
    calls / rets:
        The event mask — which event kinds are measured.
    pid:
        Process id stamped into the header.
    version:
        Entry-layout version (1 = 24-byte, 2 = 32-byte with call
        sites).
    """

    capacity: int = _DEFAULT_CAPACITY
    writer_block: int = 0
    sealed: bool = False
    calls: bool = True
    rets: bool = True
    pid: int = 4242
    version: int = VERSION

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"capacity must be positive: {self.capacity}")
        if self.writer_block < 0:
            raise ValueError(
                f"writer_block must be >= 0: {self.writer_block}"
            )
        if self.version not in _ENTRY_SIZES:
            raise ValueError(
                f"unsupported version {self.version} "
                f"(known: {sorted(_ENTRY_SIZES)})"
            )

    def replace(self, **changes):
        return replace(self, **changes)


@dataclass(frozen=True)
class AnalyzeOptions:
    """How an analysis pass runs.

    Attributes
    ----------
    jobs:
        Worker-pool width for per-thread shard reconstruction.
    chunk_size:
        Entries per ingestion chunk (``None`` = the format default).
    engine:
        Reconstruction kernel: ``"auto"``, ``"vector"`` or
        ``"python"``.
    recover:
        ``"off"`` (trust the log), ``"auto"`` (salvage damage first,
        attach the report as ``analysis.recovery``) or ``"strict"``
        (raise :class:`~repro.core.errors.RecoveryError` when
        anything was quarantined).
    """

    jobs: int = 1
    chunk_size: int = None
    engine: str = "auto"
    recover: str = "off"

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError(f"jobs must be positive: {self.jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be positive: {self.chunk_size}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r} (choose from {ENGINES})"
            )
        if self.recover not in RECOVER_MODES:
            raise ValueError(
                f"unknown recover mode {self.recover!r} "
                f"(choose from {RECOVER_MODES})"
            )

    def replace(self, **changes):
        return replace(self, **changes)


# ----------------------------------------------------------------------
# The CLI's single flag definition (no drift between subcommands)

def add_record_arguments(parser, defaults=RecordOptions()):
    """Add the recording flags to an argparse parser."""
    parser.add_argument(
        "--capacity",
        type=int,
        default=defaults.capacity,
        help="shared-log capacity in entries",
    )
    parser.add_argument(
        "--writer-block",
        type=int,
        default=defaults.writer_block,
        help="per-thread batched-writer block size (0 = per-event)",
    )
    parser.add_argument(
        "--sealed",
        action="store_true",
        default=defaults.sealed,
        help="record crash-consistent sealed segments (CRC journal)",
    )
    return parser


def record_options_from_args(args, **overrides):
    """Build :class:`RecordOptions` from parsed CLI arguments."""
    return RecordOptions(
        capacity=args.capacity,
        writer_block=args.writer_block,
        sealed=args.sealed,
        **overrides,
    )


def add_analyze_arguments(parser, defaults=AnalyzeOptions()):
    """Add the analysis flags to an argparse parser."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=defaults.jobs,
        help="worker-pool width for per-thread shard analysis",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=defaults.chunk_size,
        help="entries decoded per ingestion chunk (default 8192)",
    )
    parser.add_argument(
        "--engine",
        choices=list(ENGINES),
        default=defaults.engine,
        help="stack-reconstruction kernel: vectorised numpy passes, "
        "the sequential loop, or auto (vector when numpy is present)",
    )
    parser.add_argument(
        "--recover",
        choices=list(RECOVER_MODES),
        default=defaults.recover,
        help="salvage a damaged log before analysis (auto), refuse "
        "damage (strict), or trust the log (off)",
    )
    return parser


def analyze_options_from_args(args, **overrides):
    """Build :class:`AnalyzeOptions` from parsed CLI arguments."""
    return AnalyzeOptions(
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        engine=args.engine,
        recover=args.recover,
        **overrides,
    )
