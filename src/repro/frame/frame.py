"""The Frame: a small, immutable, column-oriented table."""


class FrameError(ValueError):
    """A frame was constructed or queried inconsistently."""


class Frame:
    """Columns of equal length with pandas-flavoured operations.

    All operations return new frames; nothing mutates in place.
    """

    def __init__(self, columns):
        if not isinstance(columns, dict):
            raise FrameError(f"columns must be a dict, got {type(columns)}")
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise FrameError(f"ragged columns: {lengths}")
        self._columns = {name: list(values) for name, values in columns.items()}
        self._length = next(iter(lengths.values()), 0)

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def from_records(cls, records, columns=None):
        """Build a frame from dicts; `columns` fixes order/selection."""
        records = list(records)
        if columns is None:
            columns = []
            for record in records:
                for key in record:
                    if key not in columns:
                        columns.append(key)
        data = {name: [r.get(name) for r in records] for name in columns}
        return cls(data)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def columns(self):
        return list(self._columns)

    def __len__(self):
        return self._length

    def __contains__(self, name):
        return name in self._columns

    def column(self, name):
        """The values of one column (a copy)."""
        self._check(name)
        return list(self._columns[name])

    def __getitem__(self, name):
        return self.column(name)

    def row(self, index):
        """Row `index` as a dict."""
        if not -self._length <= index < self._length:
            raise IndexError(f"row {index} out of {self._length}")
        return {name: values[index] for name, values in self._columns.items()}

    def rows(self):
        """Iterate rows as dicts."""
        for i in range(self._length):
            yield self.row(i)

    # ------------------------------------------------------------------
    # Relational operations

    def select(self, *names):
        for name in names:
            self._check(name)
        return Frame({name: self._columns[name] for name in names})

    def filter(self, predicate=None, **equals):
        """Keep rows where `predicate(row)` is true and/or columns
        equal the given keyword values (``filter(thread=3)``)."""
        for name in equals:
            self._check(name)

        def keep(row):
            if predicate is not None and not predicate(row):
                return False
            return all(row[name] == value for name, value in equals.items())

        return Frame.from_records(
            (row for row in self.rows() if keep(row)), self.columns
        )

    def sort(self, by, reverse=False):
        """Rows ordered by column `by` (stable)."""
        self._check(by)
        order = sorted(
            range(self._length),
            key=lambda i: self._columns[by][i],
            reverse=reverse,
        )
        return Frame(
            {
                name: [values[i] for i in order]
                for name, values in self._columns.items()
            }
        )

    def head(self, n=10):
        return Frame(
            {name: values[:n] for name, values in self._columns.items()}
        )

    def with_column(self, name, values_or_fn):
        """A frame with one extra/replaced column; callables receive
        each row and compute the value."""
        if callable(values_or_fn):
            values = [values_or_fn(row) for row in self.rows()]
        else:
            values = list(values_or_fn)
            if len(values) != self._length:
                raise FrameError(
                    f"column {name!r} has {len(values)} values, "
                    f"frame has {self._length} rows"
                )
        columns = dict(self._columns)
        columns[name] = values
        return Frame(columns)

    def groupby(self, *keys):
        for key in keys:
            self._check(key)
        return GroupBy(self, keys)

    def unique(self, name):
        """Distinct values of a column, in first-seen order."""
        self._check(name)
        seen, out = set(), []
        for value in self._columns[name]:
            if value not in seen:
                seen.add(value)
                out.append(value)
        return out

    # ------------------------------------------------------------------
    # Reductions

    def sum(self, name):
        return sum(self.column(name))

    def mean(self, name):
        if not self._length:
            raise FrameError("mean of empty frame")
        return self.sum(name) / self._length

    def min(self, name):
        return min(self.column(name))

    def max(self, name):
        return max(self.column(name))

    # ------------------------------------------------------------------
    # Output

    def to_csv(self):
        """The frame as CSV text."""
        def cell(value):
            text = "" if value is None else str(value)
            if any(ch in text for ch in ",\"\n"):
                text = '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(self.columns)]
        for row in self.rows():
            lines.append(",".join(cell(row[name]) for name in self.columns))
        return "\n".join(lines) + "\n"

    def __str__(self):
        if not self._columns:
            return "<empty frame>"
        shown = min(self._length, 30)
        cells = [self.columns]
        for i in range(shown):
            cells.append(
                [_fmt(self._columns[name][i]) for name in self.columns]
            )
        widths = [
            max(len(row[c]) for row in cells) for c in range(len(self.columns))
        ]
        lines = [
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            for row in cells
        ]
        if shown < self._length:
            lines.append(f"... {self._length - shown} more rows")
        return "\n".join(lines)

    def __repr__(self):
        return f"Frame({self._length} rows x {len(self.columns)} columns)"

    def _check(self, name):
        if name not in self._columns:
            raise FrameError(
                f"no column {name!r}; have {list(self._columns)}"
            )


class GroupBy:
    """Deferred group-by: created by :meth:`Frame.groupby`."""

    def __init__(self, frame, keys):
        self._frame = frame
        self._keys = keys
        self._groups = {}
        for row in frame.rows():
            key = tuple(row[k] for k in keys)
            self._groups.setdefault(key, []).append(row)

    def count(self, name="count"):
        """One row per group with the group size."""
        return self._build({name: len})

    def agg(self, **aggregations):
        """Aggregate columns per group.

        Each keyword maps an output column to ``(input_column, fn)``
        where fn reduces a list of values (``sum``, ``max``, ...).
        """
        def reducer(spec):
            column, fn = spec
            return lambda rows: fn([r[column] for r in rows])

        return self._build(
            {out: reducer(spec) for out, spec in aggregations.items()}
        )

    def _build(self, reducers):
        records = []
        for key, rows in self._groups.items():
            record = dict(zip(self._keys, key))
            for out, fn in reducers.items():
                record[out] = fn(rows)
            records.append(record)
        return Frame.from_records(
            records, list(self._keys) + list(reducers)
        )


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
