"""A tiny column-oriented dataframe.

The paper's analyzer exposes its results through "the declarative
Pandas API".  Pandas is not available in this offline environment, so
this package provides the small, well-tested subset the query interface
needs: selection, filtering, sorting, group-by/aggregate, and pretty
printing.  The API shape intentionally mirrors pandas where it can.
"""

from repro.frame.frame import Frame, FrameError

__all__ = ["Frame", "FrameError"]
