"""Drivers for the §IV-C case study.

``run_spdk_perf`` measures IOPS/throughput with no profiler attached
(the paper's three headline numbers); ``profile_spdk_perf`` runs the
same tool under TEE-Perf and returns the analysis behind the Figure 6
flame graphs.
"""

from repro.core.profiler import TEEPerf
from repro.machine import Machine
from repro.spdk.driver import NvmeController, NvmeNamespace, NvmeQpair, SpdkEnv
from repro.spdk.perf_tool import SpdkPerf
from repro.spdk.timing import SpdkClock
from repro.tee import NATIVE, SGX_V1, make_env

SPDK_CLASSES = (
    SpdkPerf,
    SpdkEnv,
    NvmeController,
    NvmeQpair,
    NvmeNamespace,
    SpdkClock,
)


def compile_spdk_stack(perf):
    """Instrument the whole SPDK stack (stage 1)."""
    for cls in SPDK_CLASSES:
        perf.compile_class(cls)
    return perf


def run_spdk_perf(platform=NATIVE, optimized=False, ops=2_000, **params):
    """Uninstrumented run -> SpdkPerfResult (the IOPS table)."""
    machine = Machine(cores=8)
    env = make_env(machine, platform)
    tool = SpdkPerf(env, ops=ops, optimized=optimized, **params)
    return machine.run(tool.run)


def run_spdk_perf_multi(
    platform=NATIVE,
    workers=2,
    optimized=False,
    ops_per_worker=1_000,
    cores=8,
    **params,
):
    """Multi-queue run: one poller thread per qpair, shared device.

    Returns the merged :class:`~repro.spdk.perf_tool.SpdkPerfResult`.
    Aggregate IOPS scales with pollers until the device's service rate
    becomes the ceiling.
    """
    from repro.spdk.device import NvmeDevice
    from repro.spdk.driver import NvmeController

    machine = Machine(cores=cores)
    env = make_env(machine, platform)
    device = NvmeDevice()
    controller = NvmeController(env, device)
    tools = [
        SpdkPerf(
            env,
            ops=ops_per_worker,
            optimized=optimized,
            controller=controller,
            seed=i + 1,
            **params,
        )
        for i in range(workers)
    ]

    def main():
        tools[0].spdk_env.env_init()
        controller.probe()
        threads = [
            machine.spawn(tool.run_worker, name=f"poller-{i}")
            for i, tool in enumerate(tools)
        ]
        return [thread.join() for thread in threads]

    results = machine.run(main)
    from repro.spdk.perf_tool import SpdkPerfResult

    return SpdkPerfResult.merge(results)


def profile_spdk_perf(
    platform=SGX_V1, optimized=False, ops=1_200, capacity=1 << 21, **params
):
    """TEE-Perf-instrumented run -> (perf, tool, result, analysis).

    Callers must ``perf.uninstrument()`` afterwards: class patches are
    process-global.
    """
    perf = TEEPerf.simulated(
        platform=platform, cores=8, capacity=capacity, name="spdk-perf"
    )
    compile_spdk_stack(perf)
    tool = SpdkPerf(perf.env, ops=ops, optimized=optimized, **params)
    result = perf.record(tool.run)
    return perf, tool, result, perf.analyze()
