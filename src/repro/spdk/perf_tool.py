"""The SPDK perf benchmark tool (§IV-C's measurement harness).

A single poller core drives one queue pair at a fixed queue depth with
an 80/20 random read/write mix of 4 KiB blocks: the exact workload of
the paper's case study.  ``work_fn``/``check_io``/``submit_single_io``/
``io_complete``/``task_complete`` are the frames Figure 6 shows around
the driver stack.
"""

from repro.core import no_instrument, symbol
from repro.spdk import calibration
from repro.spdk.device import NvmeDevice
from repro.spdk.driver import NvmeController, NvmeNamespace, NvmeQpair, SpdkEnv
from repro.spdk.sources import (
    CachedPidSource,
    CachedTscSource,
    PidSource,
    TscSource,
)
from repro.spdk.timing import SpdkClock

DEFAULT_QUEUE_DEPTH = 128
DEFAULT_OPS = 2_000
DEFAULT_READ_PCT = 80


class PerfTask:
    """One outstanding I/O with its DMA buffer."""

    __slots__ = ("buffer", "is_read", "lba", "start_ticks", "command")

    def __init__(self):
        self.buffer = bytearray(calibration.BLOCK_BYTES)
        self.is_read = True
        self.lba = 0
        self.start_ticks = 0
        self.command = None


class SpdkPerf:
    """The perf tool: init, then a polling loop at fixed queue depth."""

    def __init__(
        self,
        env,
        queue_depth=DEFAULT_QUEUE_DEPTH,
        ops=DEFAULT_OPS,
        read_pct=DEFAULT_READ_PCT,
        optimized=False,
        device=None,
        controller=None,
        seed=1,
    ):
        if queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1: {queue_depth}")
        if not 0 <= read_pct <= 100:
            raise ValueError(f"read_pct must be 0..100: {read_pct}")
        self.env = env
        self.queue_depth = queue_depth
        self.ops = ops
        self.read_pct = read_pct
        self.optimized = optimized
        self.spdk_env = SpdkEnv(env)
        self.controller = controller or NvmeController(
            env, device or NvmeDevice()
        )
        pid_source = (CachedPidSource if optimized else PidSource)(env)
        tsc_source = (CachedTscSource if optimized else TscSource)(env)
        self.pid_source = pid_source
        self.tsc_source = tsc_source
        self.clock = SpdkClock(env, tsc_source)
        self.qpair = NvmeQpair(env, self.controller)
        self.namespace = NvmeNamespace(env, self.qpair, pid_source)
        self._tasks = [PerfTask() for _ in range(queue_depth)]
        self._free = list(self._tasks)
        self._inflight = {}
        self._rand_state = seed or 1
        self.submitted = 0
        self.completed = 0
        self.reads = 0
        self.writes = 0
        self.latency_ticks = 0.0
        self.latencies = []
        self._start_cycles = 0.0
        self._end_cycles = 0.0

    # ------------------------------------------------------------------

    @symbol("main")
    def run(self):
        """Full tool run: init, controllers, measurement loop."""
        self.spdk_env.env_init()
        self.register_controllers()
        return self.run_worker()

    def run_worker(self):
        """The measurement loop alone (init done elsewhere) — what a
        secondary poller core executes in a multi-queue run."""
        self._start_cycles = self.env.now_cycles()
        self.work_fn()
        self._end_cycles = self.env.now_cycles()
        return self.result()

    @symbol("register_controllers")
    def register_controllers(self):
        self.controller.probe()

    @symbol("work_fn")
    def work_fn(self):
        """The poller: keep the queue full, reap completions."""
        initial = min(self.queue_depth, self.ops)
        for _ in range(initial):
            self.submit_single_io()
        while self.completed < self.ops:
            self.env.compute(calibration.WORK_FN_ITER_CYCLES)
            if not self.check_io():
                self._wait_for_device()

    @symbol("check_io")
    def check_io(self):
        ready = self.qpair.process_completions(limit=64)
        for command in ready:
            self.io_complete(command)
        return len(ready)

    @symbol("submit_single_io")
    def submit_single_io(self):
        self.env.compute(calibration.SUBMIT_SINGLE_IO_CYCLES)
        task = self._free.pop()
        task.is_read = self._rand_below(100) < self.read_pct
        task.lba = self._rand_below(self.controller.device.blocks)
        task.start_ticks = self.clock.get_ticks()
        if task.is_read:
            command = self.namespace.read_with_md(task.lba)
        else:
            self._fill_buffer(task)
            command = self.namespace.write_with_md(task.lba)
        task.command = command
        self._inflight[command.cid] = task
        self.submitted += 1

    @symbol("io_complete")
    def io_complete(self, command):
        self.env.compute(calibration.IO_COMPLETE_CYCLES)
        task = self._inflight.pop(command.cid)
        if task.is_read:
            self._consume_buffer(task)
        self.task_complete(task)

    @symbol("task_complete")
    def task_complete(self, task):
        self.env.compute(calibration.TASK_COMPLETE_CYCLES)
        end = self.clock.get_ticks()
        latency = max(0.0, end - task.start_ticks)
        self.latency_ticks += latency
        self.latencies.append(latency)
        self.completed += 1
        if task.is_read:
            self.reads += 1
        else:
            self.writes += 1
        self._free.append(task)
        if self.submitted < self.ops:
            self.submit_single_io()

    # ------------------------------------------------------------------

    @no_instrument
    def _fill_buffer(self, task):
        touched = int(calibration.BLOCK_BYTES * calibration.BUFFER_TOUCH_FRACTION)
        self.env.mem_write(touched, untrusted=True)
        task.buffer[: len(b"spdk")] = b"spdk"

    @no_instrument
    def _consume_buffer(self, task):
        touched = int(calibration.BLOCK_BYTES * calibration.BUFFER_TOUCH_FRACTION)
        self.env.mem_read(touched, untrusted=True)
        # A checksum touch: real work proportional to nothing much.
        task.buffer[0] = (task.buffer[0] + 1) & 0xFF

    @no_instrument
    def _wait_for_device(self):
        """Busy-poll until the next completion lands (CPU stays busy)."""
        next_time = self.qpair.queue.next_completion_time()
        if next_time is None:
            raise RuntimeError("queue empty but ops remain unfinished")
        thread = self.env.thread()
        if next_time > thread.local_time:
            thread.advance(next_time - thread.local_time)

    @no_instrument
    def _rand_below(self, n):
        # xorshift64*: cheap deterministic randomness for the mix/LBAs.
        x = self._rand_state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._rand_state = x
        return (x * 0x2545F4914F6CDD1D & 0xFFFFFFFFFFFFFFFF) % n

    # ------------------------------------------------------------------

    @no_instrument
    def result(self):
        return SpdkPerfResult(
            ops=self.completed,
            reads=self.reads,
            writes=self.writes,
            elapsed_cycles=self._end_cycles - self._start_cycles,
            freq_hz=self.env.machine.clock.freq_hz,
            optimized=self.optimized,
            getpid_calls=self.pid_source.real_calls,
            rdtsc_calls=self.tsc_source.real_calls,
            latencies=self.latencies,
        )


class SpdkPerfResult:
    """IOPS / throughput / latency, §IV-C style."""

    def __init__(self, ops, reads, writes, elapsed_cycles, freq_hz,
                 optimized, getpid_calls, rdtsc_calls, latencies=None):
        self.ops = ops
        self.reads = reads
        self.writes = writes
        self.elapsed_cycles = elapsed_cycles
        self.freq_hz = freq_hz
        self.optimized = optimized
        self.getpid_calls = getpid_calls
        self.rdtsc_calls = rdtsc_calls
        self.latencies = sorted(latencies or [])

    def latency_percentile_us(self, pct):
        """The pct-th percentile of per-io latency in microseconds
        (latencies are recorded in clock ticks ~ ns)."""
        if not self.latencies:
            return 0.0
        if not 0 < pct <= 100:
            raise ValueError(f"percentile must be in (0, 100]: {pct}")
        index = min(
            len(self.latencies) - 1,
            max(0, int(len(self.latencies) * pct / 100) - 1),
        )
        return self.latencies[index] / 1e3

    def mean_latency_us(self):
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies) / 1e3

    @staticmethod
    def merge(results):
        """Aggregate the per-worker results of a multi-queue run."""
        results = list(results)
        if not results:
            raise ValueError("nothing to merge")
        merged = SpdkPerfResult(
            ops=sum(r.ops for r in results),
            reads=sum(r.reads for r in results),
            writes=sum(r.writes for r in results),
            elapsed_cycles=max(r.elapsed_cycles for r in results),
            freq_hz=results[0].freq_hz,
            optimized=results[0].optimized,
            getpid_calls=sum(r.getpid_calls for r in results),
            rdtsc_calls=sum(r.rdtsc_calls for r in results),
            latencies=[l for r in results for l in r.latencies],
        )
        return merged

    @property
    def elapsed_seconds(self):
        return self.elapsed_cycles / self.freq_hz

    @property
    def iops(self):
        return self.ops / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def throughput_mib_s(self):
        bytes_moved = self.ops * calibration.BLOCK_BYTES
        if not self.elapsed_seconds:
            return 0.0
        return bytes_moved / self.elapsed_seconds / (1024 * 1024)

    def report(self):
        flavour = "optimized" if self.optimized else "unoptimized"
        return (
            f"spdk perf ({flavour}): {self.ops} ios "
            f"({self.reads} reads / {self.writes} writes), "
            f"{self.iops:,.0f} IOPS, {self.throughput_mib_s:,.1f} MiB/s "
            f"[getpid syscalls: {self.getpid_calls}, "
            f"rdtsc reads: {self.rdtsc_calls}]"
        )
