"""The tick chain of Figure 6: get_ticks -> ... -> rdtsc."""

from repro.core import symbol
from repro.spdk import calibration


class SpdkClock:
    """DPDK's timer API over a pluggable tsc source."""

    def __init__(self, env, tsc_source):
        self.env = env
        self.tsc_source = tsc_source

    @symbol("get_ticks")
    def get_ticks(self):
        self.env.compute(calibration.GET_TICKS_CYCLES / 3)
        return self.get_timer_cycles()

    @symbol("get_timer_cycles")
    def get_timer_cycles(self):
        self.env.compute(calibration.GET_TICKS_CYCLES / 3)
        return self.get_tsc_cycles()

    @symbol("get_tsc_cycles")
    def get_tsc_cycles(self):
        self.env.compute(calibration.GET_TICKS_CYCLES / 3)
        return self.rdtsc()

    @symbol("rdtsc")
    def rdtsc(self):
        """Emulated (and expensive) inside an SGX v1 enclave."""
        return self.tsc_source.rdtsc()
