"""The simulated NVMe SSD behind the SPDK driver.

The device has one service engine (its flash back-end) shared by any
number of submission/completion queue pairs: each submitted command
completes at ``max(submit + latency, previous_completion + service)``,
so a deep queue hides the latency and the device tops out at
``1/service`` IOPS regardless of how many queues feed it — like the
paper's Intel DC P3700 around 400k 4-KiB IOPS.  Each
:class:`DeviceQueue` is one completion queue: pollers only ever see
their own completions.
"""

from collections import deque

from repro.spdk import calibration


class NvmeCommand:
    """One in-flight command (the driver's tracker points here)."""

    __slots__ = ("is_read", "lba", "completion_time", "cid")

    def __init__(self, is_read, lba, completion_time, cid):
        self.is_read = is_read
        self.lba = lba
        self.completion_time = completion_time
        self.cid = cid


class DeviceQueue:
    """One submission/completion queue pair on the device side."""

    def __init__(self, device, qid):
        self.device = device
        self.qid = qid
        self._queue = deque()

    def submit(self, now, is_read, lba):
        """Ring the doorbell; returns the command."""
        command = self.device._schedule(now, is_read, lba)
        self._queue.append(command)
        return command

    def ready(self, now, limit):
        """Commands whose completion entries are visible at `now`."""
        out = []
        while (
            self._queue
            and len(out) < limit
            and self._queue[0].completion_time <= now
        ):
            out.append(self._queue.popleft())
        self.device.completed += len(out)
        return out

    def next_completion_time(self):
        """When this queue's oldest command completes (None if idle) —
        lets a poller fast-forward instead of spinning."""
        return self._queue[0].completion_time if self._queue else None

    def inflight(self):
        return len(self._queue)


class NvmeDevice:
    """Shared device state: capacity, service engine, queue roster."""

    def __init__(
        self,
        blocks=97_677_846,  # 400 GB / 4 KiB, like the P3700 in the paper
        service_cycles=calibration.DEVICE_SERVICE_CYCLES,
        latency_cycles=calibration.DEVICE_LATENCY_CYCLES,
    ):
        self.blocks = blocks
        self.service_cycles = service_cycles
        self.latency_cycles = latency_cycles
        self._last_completion = 0.0
        self._next_cid = 0
        self._queues = []
        self.submitted = 0
        self.completed = 0
        self._default_queue = self.create_queue()

    def create_queue(self):
        """Allocate one more queue pair (SPDK: one per poller core)."""
        queue = DeviceQueue(self, len(self._queues))
        self._queues.append(queue)
        return queue

    def _schedule(self, now, is_read, lba):
        if not 0 <= lba < self.blocks:
            raise ValueError(f"lba {lba} out of range 0..{self.blocks}")
        done_at = max(
            now + self.latency_cycles,
            self._last_completion + self.service_cycles,
        )
        self._last_completion = done_at
        command = NvmeCommand(is_read, lba, done_at, self._next_cid)
        self._next_cid = (self._next_cid + 1) & 0xFFFF
        self.submitted += 1
        return command

    # ------------------------------------------------------------------
    # Single-queue convenience API (used by tests and simple tools)

    def submit(self, now, is_read, lba):
        return self._default_queue.submit(now, is_read, lba)

    def ready(self, now, limit):
        return self._default_queue.ready(now, limit)

    def next_completion_time(self):
        return self._default_queue.next_completion_time()

    def inflight(self):
        return sum(q.inflight() for q in self._queues)
