"""Process-id and timestamp sources — and their cached optimisations.

The §IV-C case study: the naive SGX port calls ``getpid`` (a
synchronous ocall) on every request allocation and emulated ``rdtsc``
on every tick read.  The fix the paper implements is caching — return
the first getpid result forever, and serve timestamps from a cached
value that is *corrected* by a real read every N calls.  These four
small classes are exactly that, pluggable into the driver.
"""

from repro.spdk import calibration


class PidSource:
    """Naive: every call is a real getpid (ocall inside the TEE)."""

    def __init__(self, env):
        self.env = env
        self.real_calls = 0

    def getpid(self):
        self.real_calls += 1
        return self.env.getpid()


class CachedPidSource(PidSource):
    """Optimised: one real call, then the cached value.

    "While caching of the process ID is unproblematic" — the pid of a
    process cannot change under it, so this is exact.
    """

    def __init__(self, env):
        super().__init__(env)
        self._pid = None

    def getpid(self):
        if self._pid is None:
            self._pid = super().getpid()
        else:
            self.env.compute(4.0)  # a cached load
        return self._pid


class TscSource:
    """Naive: every tick read is a real rdtsc (emulated in SGX v1)."""

    def __init__(self, env):
        self.env = env
        self.real_calls = 0

    def rdtsc(self):
        self.real_calls += 1
        return self.env.timestamp()


class CachedTscSource(TscSource):
    """Optimised: cached timestamp "with correcting after a specific
    amount of calls" (§IV-C).

    Between corrections the source returns the cached value advanced by
    the mean inter-call gap observed so far — monotone, cheap, and
    re-anchored to truth every `interval` calls.
    """

    def __init__(
        self, env, interval=calibration.TSC_CACHE_CORRECTION_INTERVAL
    ):
        super().__init__(env)
        if interval < 1:
            raise ValueError(f"interval must be >= 1: {interval}")
        self.interval = interval
        self._calls_since_real = None
        self._cached = 0.0
        self._stride = 0.0
        self._last_real = 0.0

    def rdtsc(self):
        if (
            self._calls_since_real is None
            or self._calls_since_real >= self.interval
        ):
            now = super().rdtsc()
            if self._calls_since_real:
                self._stride = (now - self._last_real) / (
                    self._calls_since_real + 1
                )
            self._last_real = now
            self._cached = now
            self._calls_since_real = 0
            return now
        self.env.compute(6.0)  # cached load + add
        self._calls_since_real += 1
        self._cached += self._stride
        return self._cached
