"""The user-space NVMe driver stack (SPDK in miniature).

Every method symbol matches a frame of the paper's Figure 6 flame
graphs, so a TEE-Perf profile of the perf tool reads like the
original: the environment/EAL initialisation stack, the controller
probe path down to ``mmio_read_4``, and the request submission and
completion paths through the pcie qpair.

All queues, trackers and data buffers live in *untrusted* hugepage
memory (SPDK's DMA requirement), so memory charges bypass the MEE —
only the syscalls (getpid!) and timestamps pay enclave prices.
"""

from repro.core import symbol
from repro.spdk import calibration
from repro.spdk.device import NvmeDevice


class SpdkEnv:
    """env_init / DPDK EAL: hugepages and vfio (Figure 6, left stack)."""

    def __init__(self, env):
        self.env = env
        self.initialised = False

    @symbol("env_init")
    def env_init(self):
        self.eal_init()
        self.initialised = True

    @symbol("eal_init")
    def eal_init(self):
        self.eal_memory_init()
        self.eal_vfio_setup()

    @symbol("eal_memory_init")
    def eal_memory_init(self):
        self.eal_hugepage_info_init()
        self.map_all_hugepages()

    @symbol("eal_hugepage_info_init")
    def eal_hugepage_info_init(self):
        self.env.syscall("open")
        self.env.compute(20_000)

    @symbol("map_all_hugepages")
    def map_all_hugepages(self):
        self.env.syscall("mmap")
        self.env.compute(calibration.HUGEPAGE_MAP_CYCLES)
        self.env.mem_write(2 * 1024 * 1024, untrusted=True)

    @symbol("eal_vfio_setup")
    def eal_vfio_setup(self):
        self.vfio_enable()

    @symbol("vfio_enable")
    def vfio_enable(self):
        self.env.syscall("ioctl")
        self.env.compute(calibration.VFIO_SETUP_CYCLES)


class NvmeController:
    """Controller probe/init (Figure 6, the ctrlr_process_init tower)."""

    def __init__(self, env, device=None):
        self.env = env
        self.device = device or NvmeDevice()
        self.ready = False

    @symbol("probe")
    def probe(self):
        self.probe_internal()
        self.ready = True
        return self

    @symbol("probe_internal")
    def probe_internal(self):
        for _ in range(calibration.CTRLR_INIT_STATES):
            self.ctrlr_process_init()

    @symbol("ctrlr_process_init")
    def ctrlr_process_init(self):
        self.env.compute(calibration.CTRLR_STATE_WAIT_CYCLES)
        self.ctrlr_get_cc()

    @symbol("ctrlr_get_cc")
    def ctrlr_get_cc(self):
        return self.transport_ctrlr_get_reg_4(0x14)

    @symbol("transport_ctrlr_get_reg_4")
    def transport_ctrlr_get_reg_4(self, offset):
        return self.pcie_ctrlr_get_reg_4(offset)

    @symbol("pcie_ctrlr_get_reg_4")
    def pcie_ctrlr_get_reg_4(self, offset):
        return self.mmio_read_4(offset)

    @symbol("mmio_read_4")
    def mmio_read_4(self, offset):
        self.env.compute(calibration.MMIO_READ_CYCLES)
        return 0x00460001 ^ offset  # a plausible CSTS/CC pattern


class NvmeQpair:
    """One I/O queue pair: the submit and complete towers of Figure 6."""

    def __init__(self, env, controller):
        self.env = env
        self.controller = controller
        self.device = controller.device
        self.queue = controller.device.create_queue()

    # -- submission ------------------------------------------------------

    @symbol("qpair_submit_request")
    def submit_request(self, is_read, lba):
        return self.transport_qpair_submit_request(is_read, lba)

    @symbol("transport_qpair_submit_request")
    def transport_qpair_submit_request(self, is_read, lba):
        self.env.compute(calibration.TRANSPORT_SUBMIT_CYCLES)
        return self.pcie_qpair_submit_request(is_read, lba)

    @symbol("pcie_qpair_submit_request")
    def pcie_qpair_submit_request(self, is_read, lba):
        self.env.compute(calibration.PCIE_SUBMIT_CYCLES)
        self.env.mem_write(
            calibration.DESCRIPTOR_BYTES, random=True, untrusted=True
        )
        # The doorbell write serialises against the shared device: a
        # checkpoint keeps multi-queue submissions in virtual-time
        # order.
        self.env.thread().checkpoint()
        return self.queue.submit(self.env.now_cycles(), is_read, lba)

    # -- completion ------------------------------------------------------

    @symbol("qpair_process_completions")
    def process_completions(self, limit):
        self.env.compute(calibration.QPAIR_PROCESS_CYCLES)
        return self.transport_qpair_process_completions(limit)

    @symbol("transport_qpair_process_completions")
    def transport_qpair_process_completions(self, limit):
        self.env.compute(calibration.TRANSPORT_PROCESS_CYCLES)
        return self.pcie_qpair_process_completions(limit)

    @symbol("pcie_qpair_process_completions")
    def pcie_qpair_process_completions(self, limit):
        self.env.compute(calibration.PCIE_PROCESS_CYCLES)
        self.env.mem_read(
            calibration.DESCRIPTOR_BYTES, random=True, untrusted=True
        )
        self.env.thread().checkpoint()  # CQ read: order by virtual time
        ready = self.queue.ready(self.env.now_cycles(), limit)
        for command in ready:
            self.pcie_qpair_complete_tracker(command)
        return ready

    @symbol("pcie_qpair_complete_tracker")
    def pcie_qpair_complete_tracker(self, command):
        self.env.compute(calibration.PCIE_COMPLETE_TRACKER_CYCLES)


class NvmeNamespace:
    """Namespace command layer: where requests are allocated (and where
    the naive port's getpid lives)."""

    def __init__(self, env, qpair, pid_source):
        self.env = env
        self.qpair = qpair
        self.pid_source = pid_source

    @symbol("ns_cmd_read_with_md")
    def read_with_md(self, lba):
        self.env.compute(calibration.NS_CMD_CYCLES)
        return self.nvme_ns_cmd_rw(True, lba)

    @symbol("ns_cmd_write_with_md")
    def write_with_md(self, lba):
        self.env.compute(calibration.NS_CMD_CYCLES)
        return self.nvme_ns_cmd_rw(False, lba)

    @symbol("_nvme_ns_cmd_rw")
    def nvme_ns_cmd_rw(self, is_read, lba):
        self.env.compute(calibration.NVME_NS_CMD_RW_CYCLES)
        self.allocate_request()
        return self.qpair.submit_request(is_read, lba)

    @symbol("allocate_request")
    def allocate_request(self):
        self.env.compute(calibration.ALLOCATE_REQUEST_CYCLES)
        self.getpid()

    @symbol("getpid")
    def getpid(self):
        """SPDK's env layer tags requests with the owning pid."""
        return self.pid_source.getpid()
