"""Cycle costs for the SPDK stack, calibrated to §IV-C.

The paper reports, for random 80/20 read/write of 4 KiB blocks on an
Intel DC P3700:

* native SPDK:          223,808 IOPS, 874 MiB/s  (~16.1k cycles/io CPU)
* naive SGX port:        15,821 IOPS, 61.8 MiB/s (~227.6k cycles/io)
* optimised SGX port:   232,736 IOPS, 909 MiB/s  (~15.5k cycles/io)

and attributes the naive port's time to getpid (~72 %, one synchronous
ocall per request allocation) and rdtsc (~20 %, two emulated reads per
io).  The driver-path constants below recreate the native per-io cost;
the getpid/rdtsc costs come from the SGX platform model; DMA buffers
and queues live in *untrusted* hugepage memory, so the data path pays
no MEE — which is how the optimised enclave build can beat native
(it caches getpid; native keeps paying the real syscall).
"""

# --- the simulated NVMe device (Intel DC P3700, 4 KiB mixed) ---------
DEVICE_SERVICE_CYCLES = 9_000.0  # ~400k IOPS device ceiling
DEVICE_LATENCY_CYCLES = 288_000.0  # ~80 us access latency
BLOCK_BYTES = 4_096

# --- submission path -------------------------------------------------
SUBMIT_SINGLE_IO_CYCLES = 1_000.0
NS_CMD_CYCLES = 400.0
NVME_NS_CMD_RW_CYCLES = 1_400.0
ALLOCATE_REQUEST_CYCLES = 1_600.0
QPAIR_SUBMIT_CYCLES = 400.0
TRANSPORT_SUBMIT_CYCLES = 400.0
PCIE_SUBMIT_CYCLES = 4_500.0  # tracker + SQ entry + doorbell MMIO

# --- completion path -------------------------------------------------
WORK_FN_ITER_CYCLES = 250.0
CHECK_IO_CYCLES = 250.0
QPAIR_PROCESS_CYCLES = 350.0
TRANSPORT_PROCESS_CYCLES = 300.0
PCIE_PROCESS_CYCLES = 1_700.0  # CQ scan + phase bits + doorbell
PCIE_COMPLETE_TRACKER_CYCLES = 2_000.0
IO_COMPLETE_CYCLES = 800.0
TASK_COMPLETE_CYCLES = 1_500.0

# --- data handling (untrusted DMA memory, no MEE anywhere) -----------
BUFFER_TOUCH_FRACTION = 0.8  # bytes of each block actually touched
DESCRIPTOR_BYTES = 384  # trackers/SQ/CQ lines touched per io

# --- timing chain ----------------------------------------------------
GET_TICKS_CYCLES = 30.0
TSC_CACHE_CORRECTION_INTERVAL = 100  # optimised build: real rdtsc every N

# --- init path (charged once) ----------------------------------------
HUGEPAGE_MAP_CYCLES = 1_200_000.0
VFIO_SETUP_CYCLES = 400_000.0
MMIO_READ_CYCLES = 800.0
CTRLR_INIT_STATES = 8
CTRLR_STATE_WAIT_CYCLES = 36_000.0  # ~10 us admin polling per state
