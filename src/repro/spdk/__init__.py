"""The SPDK substrate: a user-space NVMe stack and its perf tool.

Rebuilds the §IV-C case study end to end — the simulated NVMe device,
the driver stack whose frames match Figure 6, the naive getpid/rdtsc
paths, the pid/tsc caching optimisation, and drivers that reproduce
both the IOPS collapse inside SGX and the 14.7x recovery.
"""

from repro.spdk.device import DeviceQueue, NvmeCommand, NvmeDevice
from repro.spdk.driver import (
    NvmeController,
    NvmeNamespace,
    NvmeQpair,
    SpdkEnv,
)
from repro.spdk.perf_tool import PerfTask, SpdkPerf, SpdkPerfResult
from repro.spdk.profiled import (
    compile_spdk_stack,
    profile_spdk_perf,
    run_spdk_perf,
    run_spdk_perf_multi,
)
from repro.spdk.sources import (
    CachedPidSource,
    CachedTscSource,
    PidSource,
    TscSource,
)
from repro.spdk.timing import SpdkClock

__all__ = [
    "CachedPidSource",
    "CachedTscSource",
    "DeviceQueue",
    "NvmeCommand",
    "NvmeController",
    "NvmeDevice",
    "NvmeNamespace",
    "NvmeQpair",
    "PerfTask",
    "PidSource",
    "SpdkClock",
    "SpdkEnv",
    "SpdkPerf",
    "SpdkPerfResult",
    "TscSource",
    "compile_spdk_stack",
    "profile_spdk_perf",
    "run_spdk_perf",
    "run_spdk_perf_multi",
]
