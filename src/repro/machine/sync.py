"""Synchronisation primitives for simulated threads.

All primitives order their effects by virtual time: an operation is
performed when the scheduler has decided the calling thread is the
minimum-time runnable thread, so acquisition order, barrier release
times and atomic histories are deterministic.

Costs default to rough Skylake figures (uncontended CAS ~20 cycles,
futex wake ~1k cycles); callers can override per-primitive.
"""

from repro.machine.errors import MachineError
from repro.machine.machine import current_thread

DEFAULT_ATOMIC_COST = 20.0
DEFAULT_LOCK_COST = 25.0
DEFAULT_WAKE_COST = 1_000.0


class SimAtomicU64:
    """A 64-bit atomic counter with fetch-and-add semantics.

    ``fetch_add`` checkpoints, giving a virtual-time-ordered history.
    ``fetch_add_relaxed`` skips the checkpoint — the paper's log tail
    only needs per-thread ordering, and the relaxed form keeps the hot
    path cheap (the GIL already makes the Python-level update atomic).
    """

    MASK = (1 << 64) - 1

    def __init__(self, value=0, cost=DEFAULT_ATOMIC_COST):
        self.value = value & self.MASK
        self.cost = cost

    def fetch_add(self, delta=1):
        thread = current_thread()
        thread.advance(self.cost)
        thread.checkpoint()
        if thread.machine.sync_observers:
            thread.machine._sync_event("atomic", self, thread)
        return self._add(delta)

    def fetch_add_relaxed(self, delta=1):
        thread = current_thread()
        thread.advance(self.cost)
        if thread.machine.sync_observers:
            thread.machine._sync_event("atomic", self, thread)
        return self._add(delta)

    def load(self):
        current_thread().advance(self.cost / 4)
        return self.value

    def store(self, value):
        thread = current_thread()
        thread.advance(self.cost)
        thread.checkpoint()
        if thread.machine.sync_observers:
            thread.machine._sync_event("atomic", self, thread)
        self.value = value & self.MASK

    def _add(self, delta):
        old = self.value
        self.value = (old + delta) & self.MASK
        return old


class SimLock:
    """A mutex with deterministic FIFO hand-off.

    The releaser pushes its local time onto the next waiter, so waiting
    time is modelled correctly.  Non-reentrant, like ``pthread_mutex``.
    """

    def __init__(self, name="lock", cost=DEFAULT_LOCK_COST):
        self.name = name
        self.cost = cost
        self._owner = None
        self._waiters = []
        self.acquisitions = 0
        self.contentions = 0

    def acquire(self):
        thread = current_thread()
        machine = thread.machine
        thread.advance(self.cost)
        thread.checkpoint()
        if self._owner is None:
            self._owner = thread
        else:
            self.contentions += 1
            if machine.sync_observers:
                machine._sync_event("contended", self, thread)
            thread._block(f"acquire({self.name})")
            self._waiters.append(thread)
            thread._yield_to_scheduler()
            if self._owner is not thread:
                raise MachineError(f"{self.name}: woken without ownership")
        self.acquisitions += 1
        if machine.sync_observers:
            machine._sync_event("acquired", self, thread)

    def release(self):
        thread = current_thread()
        if self._owner is not thread:
            raise MachineError(
                f"{self.name}: released by {thread.name} "
                f"but owned by {getattr(self._owner, 'name', None)}"
            )
        thread.advance(self.cost)
        thread.checkpoint()
        if thread.machine.sync_observers:
            thread.machine._sync_event("released", self, thread)
        if self._waiters:
            thread.advance(DEFAULT_WAKE_COST)
            nxt = self._waiters.pop(0)
            self._owner = nxt
            nxt._unblock(thread.local_time)
        else:
            self._owner = None

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False


class SimBarrier:
    """An N-party barrier; all parties leave at the max arrival time."""

    def __init__(self, parties, name="barrier", cost=DEFAULT_LOCK_COST):
        if parties < 1:
            raise ValueError(f"barrier needs at least one party: {parties}")
        self.parties = parties
        self.name = name
        self.cost = cost
        self._arrived = []
        self.generations = 0

    def wait(self):
        thread = current_thread()
        thread.advance(self.cost)
        thread.checkpoint()
        self._arrived.append(thread)
        if len(self._arrived) < self.parties:
            if thread.machine.sync_observers:
                thread.machine._sync_event("contended", self, thread)
            thread._block(f"barrier({self.name})")
            thread._yield_to_scheduler()
            return
        release_time = max(t.local_time for t in self._arrived)
        arrived, self._arrived = self._arrived, []
        self.generations += 1
        for other in arrived:
            if other is thread:
                continue
            other._unblock(release_time)
        thread.local_time = max(thread.local_time, release_time)


class SimEvent:
    """A one-shot event: waiters block until some thread sets it."""

    def __init__(self, name="event"):
        self.name = name
        self._set = False
        self._set_time = 0.0
        self._waiters = []

    def is_set(self):
        return self._set

    def wait(self):
        thread = current_thread()
        thread.checkpoint()
        if self._set:
            thread.local_time = max(thread.local_time, self._set_time)
            return
        if thread.machine.sync_observers:
            thread.machine._sync_event("contended", self, thread)
        thread._block(f"event({self.name})")
        self._waiters.append(thread)
        thread._yield_to_scheduler()

    def set(self):
        thread = current_thread()
        thread.checkpoint()
        if self._set:
            return
        self._set = True
        self._set_time = thread.local_time
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            thread.advance(DEFAULT_WAKE_COST)
            waiter._unblock(thread.local_time)
