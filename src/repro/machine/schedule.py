"""Scheduling: the policy that picks the next thread, made pluggable.

Until the exploration work the scheduler was a single hard-wired line
inside ``Machine._schedule_until_done`` — always resume the runnable
thread with the smallest local virtual time.  That line is now a
:class:`SchedulePolicy`, and the machine accepts any implementation:

* :class:`MinTimePolicy` — the historical default.  Deterministic,
  conservative discrete-event order; every existing figure and test
  reproduces bit-for-bit under it.
* :class:`RoundRobinPolicy` — deterministic rotation in tid order.
* :class:`RandomPolicy` — seeded uniform choice over the runnable
  set; the workhorse of schedule-space exploration (same seed, same
  program ⇒ the same schedule, replayable forever).
* :class:`PriorityPolicy` — pathological strict priority: always the
  youngest (or oldest) runnable thread, starving the rest.  Exists to
  hurt: starvation-sensitive invariants fail under it first.
* :class:`EnclaveAwarePolicy` — models a TEE-resident scheduler that
  hates transition storms: switching threads costs an
  ecall+ocall-sized penalty (per the cost model), so the previously
  running thread is kept as long as its time stays within the penalty
  window of the best alternative.
* :class:`ReplayPolicy` — replays a recorded choice list (a failing
  schedule found by exploration), then hands over to a fallback.
* :class:`TracingPolicy` — wraps any policy and records the
  :class:`ScheduleTrace` that exploration, replay and minimisation
  feed on.

The thread-state constants (:data:`NEW` … :data:`DONE`) and
:data:`DEFAULT_SPAWN_COST` moved here from ``repro.machine.machine``
— the scheduler owns the thread state machine.  The old deep imports
keep working but warn (see ``repro.machine.machine.__getattr__``).

Also here: :class:`SyncObserver`, the choice-point hook interface the
sync primitives report to (lock acquisitions, contention, atomic
RMWs, declared data accesses).  Detectors in :mod:`repro.explore`
implement it; an idle machine pays one ``if`` per operation.
"""

import random

from repro.machine.errors import MachineError

__all__ = [
    "BLOCKED",
    "DEFAULT_SPAWN_COST",
    "DONE",
    "EnclaveAwarePolicy",
    "MinTimePolicy",
    "NEW",
    "POLICIES",
    "PriorityPolicy",
    "RandomPolicy",
    "ReplayPolicy",
    "RoundRobinPolicy",
    "RUNNABLE",
    "RUNNING",
    "SchedulePolicy",
    "ScheduleTrace",
    "SyncObserver",
    "TracingPolicy",
    "make_policy",
]

# States of a simulated thread (owned by the scheduler).
NEW = "new"
RUNNABLE = "runnable"
RUNNING = "running"
BLOCKED = "blocked"
DONE = "done"

# Default cost, in cycles, charged to a parent for spawning a thread
# (roughly a pthread_create on the paper's testbed).
DEFAULT_SPAWN_COST = 15_000.0


class SchedulePolicy:
    """Picks which runnable simulated thread runs next.

    ``pick`` receives the runnable threads in spawn order (never
    empty) and the machine, and must return one of them.  Policies may
    keep state between picks; one policy instance drives one run.
    ``reset()`` returns the policy to its initial state so the same
    instance can drive a fresh run reproducibly.
    """

    name = "policy"

    def pick(self, runnable, machine):
        raise NotImplementedError

    def reset(self):
        """Restore initial state (a no-op for stateless policies)."""

    def __repr__(self):
        return f"{type(self).__name__}()"


class MinTimePolicy(SchedulePolicy):
    """The historical scheduler: smallest local time, ties by tid.

    This is the conservative discrete-event order every deterministic
    figure in the repository was produced under; it remains the
    machine's default.
    """

    name = "min-time"

    def pick(self, runnable, machine):
        return min(runnable, key=lambda t: (t.local_time, t.tid))


class RoundRobinPolicy(SchedulePolicy):
    """Deterministic rotation: the next runnable tid after the last
    one scheduled, wrapping around."""

    name = "round-robin"

    def __init__(self):
        self._last = -1

    def pick(self, runnable, machine):
        after = [t for t in runnable if t.tid > self._last]
        chosen = min(after or runnable, key=lambda t: t.tid)
        self._last = chosen.tid
        return chosen

    def reset(self):
        self._last = -1


class RandomPolicy(SchedulePolicy):
    """Seeded uniform choice over the runnable set.

    The only randomness source is the private :class:`random.Random`
    seeded at construction — never wall clock, never global state —
    so a schedule is a pure function of (program, seed) and any
    failure replays from its reported seed alone.
    """

    name = "random"

    def __init__(self, seed=0):
        self.seed = seed
        self._rng = random.Random(seed)

    def pick(self, runnable, machine):
        return runnable[self._rng.randrange(len(runnable))]

    def reset(self):
        self._rng = random.Random(self.seed)

    def __repr__(self):
        return f"RandomPolicy(seed={self.seed})"


class PriorityPolicy(SchedulePolicy):
    """Pathological strict priority — deliberately unfair.

    ``prefer="young"`` always runs the most recently spawned runnable
    thread (starving the founders); ``prefer="old"`` the opposite.
    Useful as a starvation stressor: anything that implicitly relies
    on every thread making progress breaks here first.
    """

    name = "priority"

    def __init__(self, prefer="young"):
        if prefer not in ("young", "old"):
            raise ValueError(
                f"prefer must be 'young' or 'old': {prefer!r}"
            )
        self.prefer = prefer

    def pick(self, runnable, machine):
        key = (lambda t: t.tid) if self.prefer == "old" else (
            lambda t: -t.tid
        )
        return min(runnable, key=key)

    def __repr__(self):
        return f"PriorityPolicy(prefer={self.prefer!r})"


class EnclaveAwarePolicy(SchedulePolicy):
    """A TEE-resident scheduler that penalises transition storms.

    Rescheduling an enclave thread costs a world switch out and back
    in (~ecall+ocall on the modelled platform), so this policy keeps
    the currently running thread on the core unless another runnable
    thread's local time trails it by more than the switch penalty.
    The effect on exploration is long uninterrupted slices — the
    opposite extreme from :class:`RandomPolicy`'s churn.

    `switch_cycles` defaults to the SGX-v1 cost model's
    ecall+ocall round trip.
    """

    name = "enclave"

    def __init__(self, switch_cycles=None, platform=None):
        if switch_cycles is None:
            if platform is None:
                from repro.tee import platform_by_name

                platform = platform_by_name("sgx-v1")
            switch_cycles = platform.ecall_cycles + platform.ocall_cycles
        self.switch_cycles = float(switch_cycles)
        self._current = None

    def pick(self, runnable, machine):
        def cost(thread):
            penalty = 0.0 if thread.tid == self._current \
                else self.switch_cycles
            return (thread.local_time + penalty, thread.tid)

        chosen = min(runnable, key=cost)
        self._current = chosen.tid
        return chosen

    def reset(self):
        self._current = None

    def __repr__(self):
        return f"EnclaveAwarePolicy(switch_cycles={self.switch_cycles})"


class ReplayPolicy(SchedulePolicy):
    """Replays a recorded choice list, then falls back.

    `choices` is a sequence of tids (or a :class:`ScheduleTrace`).
    While choices remain and the named tid is runnable, it is chosen;
    when a choice names a thread that is not currently runnable the
    policy counts a divergence and falls through to `fallback`
    (default :class:`MinTimePolicy`) for that step.  After the list is
    exhausted, `fallback` drives the rest of the run — which is what
    makes *prefix* replay (and therefore minimisation) meaningful.
    """

    name = "replay"

    def __init__(self, choices, fallback=None):
        if isinstance(choices, ScheduleTrace):
            choices = choices.choices()
        self.choices = list(choices)
        self.fallback = fallback or MinTimePolicy()
        self._step = 0
        self.diverged = 0

    def pick(self, runnable, machine):
        if self._step < len(self.choices):
            wanted = self.choices[self._step]
            self._step += 1
            for thread in runnable:
                if thread.tid == wanted:
                    return thread
            self.diverged += 1
        return self.fallback.pick(runnable, machine)

    def reset(self):
        self._step = 0
        self.diverged = 0
        self.fallback.reset()

    def __repr__(self):
        return (
            f"ReplayPolicy({len(self.choices)} choices, "
            f"fallback={self.fallback!r})"
        )


class ScheduleTrace:
    """The full record of one run's scheduling decisions.

    One step per scheduler pick: the chosen tid and the tids that
    were runnable at that moment.  A trace is the currency of
    exploration — replayed by :class:`ReplayPolicy`, branched on by
    the systematic mode, shrunk by minimisation, serialised into the
    repro artifact.
    """

    def __init__(self):
        self.chosen = []
        self.runnable = []

    def record(self, thread, runnable):
        self.chosen.append(thread.tid)
        self.runnable.append(tuple(t.tid for t in runnable))

    def choices(self):
        """The chosen-tid sequence (what :class:`ReplayPolicy` eats)."""
        return list(self.chosen)

    def signature(self):
        """A hashable identity for "same schedule" bookkeeping."""
        return tuple(self.chosen)

    def branch_points(self):
        """Step indices where the scheduler actually had a choice."""
        return [
            i for i, tids in enumerate(self.runnable) if len(tids) > 1
        ]

    def __len__(self):
        return len(self.chosen)

    def to_dict(self):
        return {
            "chosen": list(self.chosen),
            "runnable": [list(t) for t in self.runnable],
        }

    @classmethod
    def from_dict(cls, data):
        trace = cls()
        trace.chosen = list(data["chosen"])
        trace.runnable = [tuple(t) for t in data["runnable"]]
        return trace

    def __repr__(self):
        return f"ScheduleTrace({len(self)} steps)"


class TracingPolicy(SchedulePolicy):
    """Wraps a policy and records every decision into a trace."""

    def __init__(self, inner):
        self.inner = inner
        self.trace = ScheduleTrace()

    @property
    def name(self):
        return self.inner.name

    def pick(self, runnable, machine):
        chosen = self.inner.pick(runnable, machine)
        self.trace.record(chosen, runnable)
        return chosen

    def reset(self):
        self.inner.reset()
        self.trace = ScheduleTrace()

    def __repr__(self):
        return f"TracingPolicy({self.inner!r})"


#: Policy registry: name -> factory(seed=None, **kwargs).  Seeded
#: policies consume the seed; deterministic ones ignore it, so the
#: explorer can construct any of them uniformly.
POLICIES = {
    "min-time": lambda seed=None, **kw: MinTimePolicy(**kw),
    "round-robin": lambda seed=None, **kw: RoundRobinPolicy(**kw),
    "random": lambda seed=None, **kw: RandomPolicy(seed=seed or 0, **kw),
    "priority-young": lambda seed=None, **kw: PriorityPolicy(
        prefer="young", **kw
    ),
    "priority-old": lambda seed=None, **kw: PriorityPolicy(
        prefer="old", **kw
    ),
    "enclave": lambda seed=None, **kw: EnclaveAwarePolicy(**kw),
}


def make_policy(name, seed=None, **kwargs):
    """Construct a registered policy by name.

    `seed` feeds the policy's private RNG where one exists and is
    ignored by deterministic policies, so callers can thread one seed
    through uniformly.
    """
    try:
        factory = POLICIES[name]
    except KeyError:
        raise MachineError(
            f"unknown schedule policy {name!r} "
            f"(choose from {sorted(POLICIES)})"
        ) from None
    return factory(seed=seed, **kwargs)


class SyncObserver:
    """Choice-point hook interface for the sync primitives.

    A machine carries a list of observers (``machine.sync_observers``);
    each primitive reports through it when — and only when — the list
    is non-empty, so idle machines pay a single falsy check per
    operation.  All methods are no-ops here; detectors override what
    they need.
    """

    def acquired(self, primitive, thread):
        """`thread` now holds `primitive` (lock / rwlock / semaphore)."""

    def released(self, primitive, thread):
        """`thread` gave up `primitive`."""

    def contended(self, primitive, thread):
        """`thread` is about to block on `primitive`."""

    def atomic(self, primitive, thread):
        """`thread` performed an atomic RMW/store on `primitive`."""

    def access(self, location, thread, write):
        """`thread` touched shared data `location` (declared via
        :meth:`repro.machine.machine.Machine.note_access`)."""
