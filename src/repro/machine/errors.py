"""Errors raised by the virtual-time machine."""


class MachineError(Exception):
    """Base class for all machine-level failures."""


class DeadlockError(MachineError):
    """No runnable thread exists but unfinished threads remain.

    Carries the list of blocked thread descriptions so tests and users
    can see *what* every thread was waiting on.
    """

    def __init__(self, blocked):
        self.blocked = list(blocked)
        detail = ", ".join(self.blocked) or "<none>"
        super().__init__(f"deadlock: all live threads are blocked ({detail})")


class LivelockError(MachineError):
    """The scheduler's step budget ran out with threads still live.

    Raised only when the machine was given ``max_steps`` — exploration
    uses it to flag schedules that spin forever without progress.
    """

    def __init__(self, steps, live):
        self.steps = steps
        self.live = list(live)
        detail = ", ".join(self.live) or "<none>"
        super().__init__(
            f"livelock: {steps} scheduling steps without completion "
            f"(live: {detail})"
        )


class SimThreadError(MachineError):
    """A simulated thread raised; wraps the original exception."""

    def __init__(self, thread_name, original):
        self.thread_name = thread_name
        self.original = original
        super().__init__(
            f"simulated thread {thread_name!r} raised "
            f"{type(original).__name__}: {original}"
        )


class TooManyThreadsError(MachineError):
    """The machine's thread budget was exceeded."""
