"""The machine: simulated threads under a deterministic scheduler.

Simulated threads are real ``threading.Thread`` objects, but the machine
serialises them completely: exactly one simulated thread executes Python
code at a time, and control is handed over only at checkpoints.  The
scheduler always resumes the runnable thread with the smallest local
virtual time (ties broken by spawn order), which makes the simulation a
conservative discrete-event execution — every run of the same program is
bit-for-bit identical.
"""

import itertools
import threading

from repro.machine.clock import VirtualClock
from repro.machine.errors import (
    DeadlockError,
    MachineError,
    SimThreadError,
    TooManyThreadsError,
)

# States of a simulated thread.
NEW = "new"
RUNNABLE = "runnable"
RUNNING = "running"
BLOCKED = "blocked"
DONE = "done"

# Default cost, in cycles, charged to a parent for spawning a thread
# (roughly a pthread_create on the paper's testbed).
DEFAULT_SPAWN_COST = 15_000.0

_current = threading.local()


def current_thread():
    """Return the :class:`SimThread` executing the caller.

    Raises :class:`MachineError` when called from outside a simulated
    thread (e.g. from the host test process).
    """
    thread = getattr(_current, "thread", None)
    if thread is None:
        raise MachineError("not inside a simulated thread")
    return thread


class _KillThread(BaseException):
    """Internal: unwinds a simulated thread when the machine aborts."""


class SimThread:
    """One simulated thread with its own local virtual time."""

    def __init__(self, machine, tid, func, args, kwargs, name, start_time):
        self.machine = machine
        self.tid = tid
        self.name = name or f"thread-{tid}"
        self.start_time = float(start_time)
        self.local_time = float(start_time)
        self.state = NEW
        self.result = None
        self.error = None
        self.end_time = None
        self._func = func
        self._args = args
        self._kwargs = kwargs
        self._resume = threading.Event()
        self._kill = False
        self._block_reason = None
        self._joiners = []
        self._real = threading.Thread(
            target=self._bootstrap, name=self.name, daemon=True
        )

    # ------------------------------------------------------------------
    # Time accounting (fast path — no scheduler interaction)

    def advance(self, cycles):
        """Charge `cycles` of CPU work to this thread's local time.

        The charge is stretched by the machine's processor-sharing
        factor when more threads are live than cores are available.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance by negative cycles: {cycles}")
        self.local_time += cycles * self.machine._slowdown()

    # ------------------------------------------------------------------
    # Scheduler interaction

    def checkpoint(self):
        """Hand control to the scheduler; resume when we are min-time."""
        self.state = RUNNABLE
        self._yield_to_scheduler()

    def sleep(self, cycles):
        """Advance local time and let other threads catch up."""
        self.advance(cycles)
        self.checkpoint()

    def join(self):
        """Block the *calling* thread until this thread finishes.

        Returns this thread's result; re-raises its exception wrapped in
        :class:`SimThreadError`.  The caller's local time advances to at
        least this thread's end time.
        """
        caller = current_thread()
        if caller is self:
            raise MachineError(f"{self.name} cannot join itself")
        if self.state != DONE:
            caller._block(f"join({self.name})")
            self._joiners.append(caller)
            caller._yield_to_scheduler()
        caller.local_time = max(caller.local_time, self.end_time)
        if self.error is not None:
            raise SimThreadError(self.name, self.error)
        return self.result

    # ------------------------------------------------------------------
    # Internals

    def _block(self, reason):
        self.state = BLOCKED
        self._block_reason = reason

    def _unblock(self, at_time):
        self.state = RUNNABLE
        self._block_reason = None
        self.local_time = max(self.local_time, at_time)

    def _yield_to_scheduler(self):
        self.machine._yielded.set()
        self._resume.wait()
        self._resume.clear()
        if self._kill:
            raise _KillThread()

    def _bootstrap(self):
        _current.thread = self
        try:
            self._resume.wait()
            self._resume.clear()
            if self._kill:
                return
            try:
                self.result = self._func(*self._args, **self._kwargs)
            except _KillThread:
                return
            except BaseException as exc:  # noqa: BLE001 — reported to run()
                self.error = exc
        finally:
            if not self._kill:
                self.state = DONE
                self.end_time = self.local_time
                for joiner in self._joiners:
                    joiner._unblock(self.end_time)
                self.machine._yielded.set()

    def __repr__(self):
        return (
            f"SimThread(tid={self.tid}, name={self.name!r}, "
            f"state={self.state}, t={self.local_time:.0f})"
        )


class Machine:
    """A simulated multicore machine.

    Parameters
    ----------
    cores:
        Number of hardware threads.  When more simulated threads are
        live than cores available, CPU charges are stretched by the
        ratio (processor sharing).
    freq_hz:
        Core frequency used to convert cycles to wall time.
    max_threads:
        Guard against runaway spawning.
    spawn_cost:
        Cycles charged to a parent for each spawn.
    """

    def __init__(
        self,
        cores=8,
        freq_hz=VirtualClock().freq_hz,
        max_threads=1024,
        spawn_cost=DEFAULT_SPAWN_COST,
    ):
        if cores < 1:
            raise ValueError(f"need at least one core, got {cores}")
        self.clock = VirtualClock(freq_hz)
        self.cores = cores
        self.spawn_cost = spawn_cost
        self._max_threads = max_threads
        self._reserved_cores = 0
        self._threads = []
        self._tids = itertools.count(1)
        self._yielded = threading.Event()
        self._running = False
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # Public API

    def current(self):
        """The simulated thread executing the caller."""
        return current_thread()

    def spawn(self, func, *args, name=None, **kwargs):
        """Create a new simulated thread running ``func(*args, **kwargs)``.

        When called from inside a simulated thread, the spawn cost is
        charged to the parent and the child starts at the parent's local
        time.  When called before :meth:`run`, the child starts at time
        zero.
        """
        if len(self._threads) >= self._max_threads:
            raise TooManyThreadsError(
                f"thread budget of {self._max_threads} exhausted"
            )
        parent = getattr(_current, "thread", None)
        if parent is not None and parent.machine is self:
            parent.advance(self.spawn_cost)
            start_time = parent.local_time
        else:
            start_time = 0.0
        thread = SimThread(
            self, next(self._tids), func, args, kwargs, name, start_time
        )
        thread.state = RUNNABLE
        self._threads.append(thread)
        thread._real.start()
        return thread

    def run(self, func=None, *args, name="main", **kwargs):
        """Drive the simulation to completion and return `func`'s result.

        `func` (if given) is spawned as the root thread.  The scheduler
        then loops until every simulated thread is done, always resuming
        the runnable thread with the smallest local time.
        """
        if self._running:
            raise MachineError("machine is already running")
        root = None
        if func is not None:
            root = self.spawn(func, *args, name=name, **kwargs)
        if not self._threads:
            raise MachineError("nothing to run: no threads spawned")
        self._running = True
        try:
            self._schedule_until_done()
        finally:
            self._running = False
        failed = next((t for t in self._threads if t.error is not None), None)
        if failed is not None:
            raise SimThreadError(failed.name, failed.error) from failed.error
        self._elapsed = max(t.end_time for t in self._threads)
        return root.result if root is not None else None

    def elapsed_cycles(self):
        """Virtual cycles from time zero to the last thread's end."""
        return self._elapsed

    def elapsed_seconds(self):
        """Virtual seconds from time zero to the last thread's end."""
        return self.clock.cycles_to_seconds(self._elapsed)

    def reserve_core(self, n=1):
        """Dedicate `n` cores (e.g. to the software counter thread)."""
        if self._reserved_cores + n >= self.cores:
            raise MachineError(
                f"cannot reserve {n} of {self.cores} cores "
                f"({self._reserved_cores} already reserved)"
            )
        self._reserved_cores += n

    def release_core(self, n=1):
        """Return previously reserved cores to the scheduler."""
        if n > self._reserved_cores:
            raise MachineError(
                f"releasing {n} cores but only {self._reserved_cores} reserved"
            )
        self._reserved_cores -= n

    def available_cores(self):
        """Cores usable by application threads."""
        return self.cores - self._reserved_cores

    # ------------------------------------------------------------------
    # Internals

    def _slowdown(self):
        live = sum(1 for t in self._threads if t.state in (RUNNABLE, RUNNING))
        avail = max(1, self.cores - self._reserved_cores)
        return max(1.0, live / avail)

    def _schedule_until_done(self):
        while True:
            live = [t for t in self._threads if t.state != DONE]
            if not live:
                return
            runnable = [t for t in live if t.state == RUNNABLE]
            if not runnable:
                self._abort()
                raise DeadlockError(
                    f"{t.name}: {t._block_reason}" for t in live
                )
            thread = min(runnable, key=lambda t: (t.local_time, t.tid))
            thread.state = RUNNING
            thread._resume.set()
            self._yielded.wait()
            self._yielded.clear()
            if any(t.error is not None for t in self._threads):
                self._abort()
                return

    def _abort(self):
        for thread in self._threads:
            if thread.state not in (DONE,) and thread._real.is_alive():
                thread._kill = True
                thread._resume.set()
        for thread in self._threads:
            if thread._real.is_alive():
                thread._real.join(timeout=5.0)
            if thread.end_time is None:
                thread.end_time = thread.local_time
                thread.state = DONE
