"""The machine: simulated threads under a deterministic scheduler.

Simulated threads are real ``threading.Thread`` objects, but the machine
serialises them completely: exactly one simulated thread executes Python
code at a time, and control is handed over only at checkpoints.  *Which*
runnable thread resumes is decided by a pluggable
:class:`~repro.machine.schedule.SchedulePolicy`; the default
:class:`~repro.machine.schedule.MinTimePolicy` always resumes the
runnable thread with the smallest local virtual time (ties broken by
spawn order), which makes the simulation a conservative discrete-event
execution — every run of the same program is bit-for-bit identical.
Exploration (:mod:`repro.explore`) swaps in seeded-random and
pathological policies to hammer the same program across many
interleavings.
"""

import itertools
import threading
import warnings

from repro.machine.clock import VirtualClock
from repro.machine.errors import (
    DeadlockError,
    LivelockError,
    MachineError,
    SimThreadError,
    TooManyThreadsError,
)
from repro.machine.schedule import (
    BLOCKED as _BLOCKED,
    DEFAULT_SPAWN_COST as _DEFAULT_SPAWN_COST,
    DONE as _DONE,
    MinTimePolicy,
    NEW as _NEW,
    RUNNABLE as _RUNNABLE,
    RUNNING as _RUNNING,
)

#: Names that moved to :mod:`repro.machine.schedule` (the scheduler
#: owns the thread state machine); old deep imports warn below.
_MOVED_TO_SCHEDULE = (
    "NEW",
    "RUNNABLE",
    "RUNNING",
    "BLOCKED",
    "DONE",
    "DEFAULT_SPAWN_COST",
)

_current = threading.local()


def __getattr__(name):
    if name in _MOVED_TO_SCHEDULE:
        warnings.warn(
            f"importing {name!r} from repro.machine.machine is "
            f"deprecated; use repro.machine.schedule.{name} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.machine import schedule

        return getattr(schedule, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def current_thread():
    """Return the :class:`SimThread` executing the caller.

    Raises :class:`MachineError` when called from outside a simulated
    thread (e.g. from the host test process).
    """
    thread = getattr(_current, "thread", None)
    if thread is None:
        raise MachineError("not inside a simulated thread")
    return thread


class _KillThread(BaseException):
    """Internal: unwinds a simulated thread when the machine aborts."""


class SimThread:
    """One simulated thread with its own local virtual time."""

    def __init__(self, machine, tid, func, args, kwargs, name, start_time):
        self.machine = machine
        self.tid = tid
        self.name = name or f"thread-{tid}"
        self.start_time = float(start_time)
        self.local_time = float(start_time)
        self.state = _NEW
        self.result = None
        self.error = None
        self.end_time = None
        self._func = func
        self._args = args
        self._kwargs = kwargs
        self._resume = threading.Event()
        self._kill = False
        self._block_reason = None
        self._joiners = []
        self._real = threading.Thread(
            target=self._bootstrap, name=self.name, daemon=True
        )

    # ------------------------------------------------------------------
    # Time accounting (fast path — no scheduler interaction)

    def advance(self, cycles):
        """Charge `cycles` of CPU work to this thread's local time.

        The charge is stretched by the machine's processor-sharing
        factor when more threads are live than cores are available.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance by negative cycles: {cycles}")
        self.local_time += cycles * self.machine._slowdown()

    # ------------------------------------------------------------------
    # Scheduler interaction

    def checkpoint(self):
        """Hand control to the scheduler; resume when chosen again."""
        self.state = _RUNNABLE
        self._yield_to_scheduler()

    def sleep(self, cycles):
        """Advance local time and let other threads catch up."""
        self.advance(cycles)
        self.checkpoint()

    def join(self):
        """Block the *calling* thread until this thread finishes.

        Returns this thread's result; re-raises its exception wrapped in
        :class:`SimThreadError`.  The caller's local time advances to at
        least this thread's end time.
        """
        caller = current_thread()
        if caller is self:
            raise MachineError(f"{self.name} cannot join itself")
        if self.state != _DONE:
            caller._block(f"join({self.name})")
            self._joiners.append(caller)
            caller._yield_to_scheduler()
        caller.local_time = max(caller.local_time, self.end_time)
        if self.error is not None:
            raise SimThreadError(self.name, self.error)
        return self.result

    # ------------------------------------------------------------------
    # Internals

    def _block(self, reason):
        self.state = _BLOCKED
        self._block_reason = reason

    def _unblock(self, at_time):
        self.state = _RUNNABLE
        self._block_reason = None
        self.local_time = max(self.local_time, at_time)

    def _yield_to_scheduler(self):
        # A dying thread must never park again: _KillThread unwinds
        # through the workload's ``with lock:`` blocks, whose releases
        # checkpoint — waiting here would strand the thread on an
        # event nobody will ever set (and _abort's join would stall).
        if self._kill:
            raise _KillThread()
        self.machine._yielded.set()
        self._resume.wait()
        self._resume.clear()
        if self._kill:
            raise _KillThread()

    def _bootstrap(self):
        _current.thread = self
        try:
            self._resume.wait()
            self._resume.clear()
            if self._kill:
                return
            try:
                self.result = self._func(*self._args, **self._kwargs)
            except _KillThread:
                return
            except BaseException as exc:  # noqa: BLE001 — reported to run()
                self.error = exc
        finally:
            if not self._kill:
                self.state = _DONE
                self.end_time = self.local_time
                for joiner in self._joiners:
                    joiner._unblock(self.end_time)
                self.machine._yielded.set()

    def __repr__(self):
        return (
            f"SimThread(tid={self.tid}, name={self.name!r}, "
            f"state={self.state}, t={self.local_time:.0f})"
        )


class Machine:
    """A simulated multicore machine.

    Parameters
    ----------
    cores:
        Number of hardware threads.  When more simulated threads are
        live than cores available, CPU charges are stretched by the
        ratio (processor sharing).
    freq_hz:
        Core frequency used to convert cycles to wall time.
    max_threads:
        Guard against runaway spawning.
    spawn_cost:
        Cycles charged to a parent for each spawn.
    policy:
        The :class:`~repro.machine.schedule.SchedulePolicy` deciding
        which runnable thread resumes at each step.  Default:
        :class:`~repro.machine.schedule.MinTimePolicy` (the
        deterministic conservative order).
    max_steps:
        Optional scheduling-step budget; exceeding it aborts the run
        with :class:`~repro.machine.errors.LivelockError`.  ``None``
        (the default) means unbounded.
    """

    def __init__(
        self,
        cores=8,
        freq_hz=VirtualClock().freq_hz,
        max_threads=1024,
        spawn_cost=_DEFAULT_SPAWN_COST,
        policy=None,
        max_steps=None,
    ):
        if cores < 1:
            raise ValueError(f"need at least one core, got {cores}")
        self.clock = VirtualClock(freq_hz)
        self.cores = cores
        self.spawn_cost = spawn_cost
        self.policy = policy if policy is not None else MinTimePolicy()
        self.max_steps = max_steps
        self.schedule_steps = 0
        #: Choice-point observers (:class:`repro.machine.schedule
        #: .SyncObserver`); the sync primitives report here when the
        #: list is non-empty.
        self.sync_observers = []
        self._max_threads = max_threads
        self._reserved_cores = 0
        self._threads = []
        self._tids = itertools.count(1)
        self._yielded = threading.Event()
        self._running = False
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # Public API

    def current(self):
        """The simulated thread executing the caller."""
        return current_thread()

    def spawn(self, func, *args, name=None, kwargs=None, **extra):
        """Create a new simulated thread running ``func(*args, **kwargs)``.

        Keyword arguments for the workload go in the explicit `kwargs`
        dict, so they can never collide with the spawn's own ``name=``
        (a workload parameter called ``name`` used to be swallowed).
        Passing workload keywords loose (``spawn(f, retries=3)``) still
        works but is deprecated.

        When called from inside a simulated thread, the spawn cost is
        charged to the parent and the child starts at the parent's local
        time.  When called before :meth:`run`, the child starts at time
        zero.
        """
        kwargs = _merge_workload_kwargs(kwargs, extra, "Machine.spawn")
        if len(self._threads) >= self._max_threads:
            raise TooManyThreadsError(
                f"thread budget of {self._max_threads} exhausted"
            )
        parent = getattr(_current, "thread", None)
        if parent is not None and parent.machine is self:
            parent.advance(self.spawn_cost)
            start_time = parent.local_time
        else:
            start_time = 0.0
        thread = SimThread(
            self, next(self._tids), func, args, kwargs, name, start_time
        )
        thread.state = _RUNNABLE
        self._threads.append(thread)
        thread._real.start()
        return thread

    def run(self, func=None, *args, name="main", kwargs=None, **extra):
        """Drive the simulation to completion and return `func`'s result.

        `func` (if given) is spawned as the root thread with the
        workload keywords from the explicit `kwargs` dict (loose
        keywords are deprecated, as in :meth:`spawn`).  The scheduler
        then loops until every simulated thread is done, resuming the
        thread the policy picks at each step.
        """
        if self._running:
            raise MachineError("machine is already running")
        kwargs = _merge_workload_kwargs(kwargs, extra, "Machine.run")
        root = None
        if func is not None:
            root = self.spawn(func, *args, name=name, kwargs=kwargs)
        if not self._threads:
            raise MachineError("nothing to run: no threads spawned")
        self._running = True
        try:
            self._schedule_until_done()
        finally:
            self._running = False
        failed = next((t for t in self._threads if t.error is not None), None)
        if failed is not None:
            raise SimThreadError(failed.name, failed.error) from failed.error
        self._elapsed = max(t.end_time for t in self._threads)
        return root.result if root is not None else None

    def note_access(self, location, write=True):
        """Declare a shared-data access from the calling sim thread.

        `location` is any hashable identity for the shared datum (a
        string, an ``id()``, a tuple).  The declaration flows to the
        machine's :attr:`sync_observers` — the lockset race detector
        consumes it — and costs one list check when no observer is
        attached.
        """
        if not self.sync_observers:
            return
        thread = current_thread()
        for obs in self.sync_observers:
            obs.access(location, thread, write)

    def elapsed_cycles(self):
        """Virtual cycles from time zero to the last thread's end."""
        return self._elapsed

    def elapsed_seconds(self):
        """Virtual seconds from time zero to the last thread's end."""
        return self.clock.cycles_to_seconds(self._elapsed)

    def reserve_core(self, n=1):
        """Dedicate `n` cores (e.g. to the software counter thread)."""
        if self._reserved_cores + n >= self.cores:
            raise MachineError(
                f"cannot reserve {n} of {self.cores} cores "
                f"({self._reserved_cores} already reserved)"
            )
        self._reserved_cores += n

    def release_core(self, n=1):
        """Return previously reserved cores to the scheduler."""
        if n > self._reserved_cores:
            raise MachineError(
                f"releasing {n} cores but only {self._reserved_cores} reserved"
            )
        self._reserved_cores -= n

    def available_cores(self):
        """Cores usable by application threads."""
        return self.cores - self._reserved_cores

    # ------------------------------------------------------------------
    # Internals

    def _slowdown(self):
        live = sum(
            1 for t in self._threads if t.state in (_RUNNABLE, _RUNNING)
        )
        avail = max(1, self.cores - self._reserved_cores)
        return max(1.0, live / avail)

    def _sync_event(self, event, primitive, thread):
        """Fan a choice-point event out to the attached observers."""
        for obs in self.sync_observers:
            getattr(obs, event)(primitive, thread)

    def _schedule_until_done(self):
        while True:
            live = [t for t in self._threads if t.state != _DONE]
            if not live:
                return
            runnable = [t for t in live if t.state == _RUNNABLE]
            if not runnable:
                self._abort()
                raise DeadlockError(
                    f"{t.name}: {t._block_reason}" for t in live
                )
            if (
                self.max_steps is not None
                and self.schedule_steps >= self.max_steps
            ):
                self._abort()
                raise LivelockError(
                    self.schedule_steps,
                    (f"{t.name} ({t.state})" for t in live),
                )
            thread = self.policy.pick(runnable, self)
            if thread not in runnable:
                self._abort()
                raise MachineError(
                    f"policy {self.policy!r} picked "
                    f"{getattr(thread, 'name', thread)!r}, which is not "
                    f"runnable"
                )
            self.schedule_steps += 1
            thread.state = _RUNNING
            thread._resume.set()
            self._yielded.wait()
            self._yielded.clear()
            if any(t.error is not None for t in self._threads):
                self._abort()
                return

    def _abort(self):
        for thread in self._threads:
            if thread.state not in (_DONE,) and thread._real.is_alive():
                thread._kill = True
                thread._resume.set()
        for thread in self._threads:
            if thread._real.is_alive():
                thread._real.join(timeout=5.0)
            if thread.end_time is None:
                thread.end_time = thread.local_time
                thread.state = _DONE


def _merge_workload_kwargs(kwargs, extra, where):
    """The spawn/run kwarg-collision shim.

    New call shape: workload keywords arrive in the explicit `kwargs`
    dict.  Old call shape: loose ``**extra`` keywords still work but
    warn; explicit `kwargs` wins on a name collision.
    """
    if extra:
        warnings.warn(
            f"passing workload keyword arguments loose to {where} is "
            f"deprecated (they collide with the spawn's own name=); "
            f"pass kwargs={{...}} instead",
            DeprecationWarning,
            stacklevel=3,
        )
        merged = dict(extra)
        if kwargs:
            merged.update(kwargs)
        return merged
    return dict(kwargs) if kwargs else {}
