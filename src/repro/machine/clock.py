"""Virtual clock arithmetic.

All machine time is measured in CPU *cycles* (floats).  The clock knows
the simulated core frequency, so callers can convert between cycles,
seconds, and the quantised ticks of a software counter.
"""

DEFAULT_FREQ_HZ = 3.6e9  # the paper's Xeon E3-1270 v5 runs at 3.60 GHz


class VirtualClock:
    """Converts between cycles, seconds and counter ticks.

    The clock itself holds no mutable "now"; each simulated thread keeps
    its own local time and the scheduler orders events by it.  This
    object is the unit system.
    """

    def __init__(self, freq_hz=DEFAULT_FREQ_HZ):
        if freq_hz <= 0:
            raise ValueError(f"frequency must be positive, got {freq_hz}")
        self.freq_hz = float(freq_hz)

    def cycles_to_seconds(self, cycles):
        """Convert a cycle count to seconds at the core frequency."""
        return cycles / self.freq_hz

    def seconds_to_cycles(self, seconds):
        """Convert seconds to a cycle count at the core frequency."""
        return seconds * self.freq_hz

    def cycles_to_ns(self, cycles):
        """Convert a cycle count to nanoseconds."""
        return cycles * 1e9 / self.freq_hz

    def ns_to_cycles(self, ns):
        """Convert nanoseconds to a cycle count."""
        return ns * self.freq_hz / 1e9

    def __repr__(self):
        return f"VirtualClock(freq_hz={self.freq_hz:.3e})"
