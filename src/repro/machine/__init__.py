"""Deterministic virtual-time machine.

This package is the execution substrate for the whole reproduction.  It
runs *simulated threads* (real Python threads under a fully serialised
cooperative scheduler) against a virtual clock measured in CPU cycles.
Exactly one simulated thread executes Python code at any moment; control
changes hands only at *checkpoints* (locks, barriers, atomics, spawn,
join), where the scheduler always resumes the runnable thread with the
smallest local virtual time.  The result is a conservative discrete-event
simulation: timings, lock-acquisition order and scheduling decisions are
all deterministic, and shared Python state needs no extra locking.

Typical use::

    from repro.machine import Machine

    machine = Machine(cores=8, freq_hz=3.6e9)

    def worker(n):
        machine.current().advance(1000 * n)
        return n * n

    def main():
        threads = [machine.spawn(worker, i) for i in range(4)]
        return [t.join() for t in threads]

    result = machine.run(main)
    print(machine.elapsed_seconds())
"""

from repro.machine.clock import VirtualClock
from repro.machine.errors import (
    DeadlockError,
    LivelockError,
    MachineError,
    SimThreadError,
    TooManyThreadsError,
)
from repro.machine.machine import Machine, SimThread, current_thread
from repro.machine.schedule import (
    POLICIES,
    EnclaveAwarePolicy,
    MinTimePolicy,
    PriorityPolicy,
    RandomPolicy,
    ReplayPolicy,
    RoundRobinPolicy,
    SchedulePolicy,
    ScheduleTrace,
    SyncObserver,
    TracingPolicy,
    make_policy,
)
from repro.machine.sync import SimAtomicU64, SimBarrier, SimEvent, SimLock
from repro.machine.sync_extra import SimCondition, SimRWLock, SimSemaphore

__all__ = [
    "DeadlockError",
    "EnclaveAwarePolicy",
    "LivelockError",
    "Machine",
    "MachineError",
    "MinTimePolicy",
    "POLICIES",
    "PriorityPolicy",
    "RandomPolicy",
    "ReplayPolicy",
    "RoundRobinPolicy",
    "SchedulePolicy",
    "ScheduleTrace",
    "SimAtomicU64",
    "SimBarrier",
    "SimCondition",
    "SimEvent",
    "SimLock",
    "SimRWLock",
    "SimSemaphore",
    "SimThread",
    "SimThreadError",
    "SyncObserver",
    "TooManyThreadsError",
    "TracingPolicy",
    "VirtualClock",
    "current_thread",
    "make_policy",
]
