"""Higher-level synchronisation primitives.

Built on the same conservative virtual-time discipline as
:mod:`repro.machine.sync`: every operation checkpoints before touching
shared state, blocked threads resume at the waking thread's time, and
wake order is deterministic FIFO.
"""

from repro.machine.errors import MachineError
from repro.machine.machine import current_thread
from repro.machine.sync import DEFAULT_LOCK_COST, DEFAULT_WAKE_COST, SimLock


class SimSemaphore:
    """A counting semaphore with FIFO wakeups."""

    def __init__(self, permits=1, name="semaphore", cost=DEFAULT_LOCK_COST):
        if permits < 0:
            raise ValueError(f"permits must be >= 0: {permits}")
        self.name = name
        self.cost = cost
        self._permits = permits
        self._waiters = []

    @property
    def permits(self):
        return self._permits

    def acquire(self):
        thread = current_thread()
        thread.advance(self.cost)
        thread.checkpoint()
        if self._permits > 0:
            self._permits -= 1
            return
        if thread.machine.sync_observers:
            thread.machine._sync_event("contended", self, thread)
        thread._block(f"semaphore({self.name})")
        self._waiters.append(thread)
        thread._yield_to_scheduler()
        # The releaser transferred its permit directly to us.

    def release(self, n=1):
        if n < 1:
            raise ValueError(f"release count must be >= 1: {n}")
        thread = current_thread()
        thread.advance(self.cost)
        thread.checkpoint()
        for _ in range(n):
            if self._waiters:
                thread.advance(DEFAULT_WAKE_COST)
                self._waiters.pop(0)._unblock(thread.local_time)
            else:
                self._permits += 1

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False


class SimRWLock:
    """A readers-writer lock, writer-preferring.

    Multiple readers share the lock; a writer waits for all readers to
    drain and blocks new readers while queued (no writer starvation).
    """

    def __init__(self, name="rwlock", cost=DEFAULT_LOCK_COST):
        self.name = name
        self.cost = cost
        self._readers = 0
        self._writer = None
        self._waiting_writers = []
        self._waiting_readers = []

    def acquire_read(self):
        thread = current_thread()
        machine = thread.machine
        thread.advance(self.cost)
        thread.checkpoint()
        if self._writer is not None or self._waiting_writers:
            if machine.sync_observers:
                machine._sync_event("contended", self, thread)
            thread._block(f"rwlock-read({self.name})")
            self._waiting_readers.append(thread)
            thread._yield_to_scheduler()
        else:
            self._readers += 1
        if machine.sync_observers:
            machine._sync_event("acquired", self, thread)

    def release_read(self):
        thread = current_thread()
        if self._readers < 1:
            raise MachineError(f"{self.name}: no readers hold the lock")
        thread.advance(self.cost)
        thread.checkpoint()
        if thread.machine.sync_observers:
            thread.machine._sync_event("released", self, thread)
        self._readers -= 1
        if self._readers == 0:
            self._promote(thread)

    def acquire_write(self):
        thread = current_thread()
        machine = thread.machine
        thread.advance(self.cost)
        thread.checkpoint()
        if self._writer is None and self._readers == 0:
            self._writer = thread
        else:
            if machine.sync_observers:
                machine._sync_event("contended", self, thread)
            thread._block(f"rwlock-write({self.name})")
            self._waiting_writers.append(thread)
            thread._yield_to_scheduler()
            if self._writer is not thread:
                raise MachineError(f"{self.name}: woken without write lock")
        if machine.sync_observers:
            machine._sync_event("acquired", self, thread)

    def release_write(self):
        thread = current_thread()
        if self._writer is not thread:
            raise MachineError(
                f"{self.name}: write-released by non-owner {thread.name}"
            )
        thread.advance(self.cost)
        thread.checkpoint()
        if thread.machine.sync_observers:
            thread.machine._sync_event("released", self, thread)
        self._writer = None
        self._promote(thread)

    def _promote(self, releaser):
        """Hand the lock over: writers first, else all queued readers."""
        if self._writer is not None or self._readers:
            return
        if self._waiting_writers:
            releaser.advance(DEFAULT_WAKE_COST)
            writer = self._waiting_writers.pop(0)
            self._writer = writer
            writer._unblock(releaser.local_time)
            return
        readers, self._waiting_readers = self._waiting_readers, []
        for reader in readers:
            releaser.advance(DEFAULT_WAKE_COST)
            self._readers += 1
            reader._unblock(releaser.local_time)


class SimCondition:
    """A condition variable bound to a :class:`SimLock`."""

    def __init__(self, lock=None, name="condition"):
        self.lock = lock or SimLock(name=f"{name}-lock")
        self.name = name
        self._waiters = []

    def wait(self):
        """Release the lock, sleep until notified, reacquire."""
        thread = current_thread()
        if self.lock._owner is not thread:
            raise MachineError(f"{self.name}: wait() without the lock")
        self._waiters.append(thread)
        self.lock.release()
        if thread in self._waiters:  # not yet notified during release
            if thread.machine.sync_observers:
                thread.machine._sync_event("contended", self, thread)
            thread._block(f"condition({self.name})")
            thread._yield_to_scheduler()
        self.lock.acquire()

    def notify(self, n=1):
        thread = current_thread()
        if self.lock._owner is not thread:
            raise MachineError(f"{self.name}: notify() without the lock")
        for _ in range(min(n, len(self._waiters))):
            thread.advance(DEFAULT_WAKE_COST)
            self._waiters.pop(0)._unblock(thread.local_time)

    def notify_all(self):
        self.notify(len(self._waiters))

    def __enter__(self):
        self.lock.acquire()
        return self

    def __exit__(self, *exc):
        self.lock.release()
        return False
