"""The ``tee-perf`` command-line interface.

Offline utilities around the log format and the visualizer::

    tee-perf inspect <run.teeperf>          # header + entry statistics
    tee-perf recover <run.teeperf> -o salvaged.teeperf
    tee-perf flamegraph <stacks.folded> -o out.svg
    tee-perf demo [--platform sgx-v1] [-o DIR]

``inspect`` works on any persisted log without needing the binary
image; ``flamegraph`` renders standard folded-stacks text (from this
tool or any other producer) into a standalone SVG; ``demo`` runs a
small simulated workload end to end and writes its artefacts.

Plus the live surface::

    tee-perf monitor [--workload histogram] [--port 9464] [--rules F]

which runs a Phoenix workload under the profiler with a monitor
attached and serves Prometheus-format scrapes while it executes (see
docs/monitoring.md).

And the fleet service (see docs/fleet.md)::

    tee-perf fleet serve [--port P] [--ingest-port Q]
    tee-perf fleet ingest run.teeperf --connect HOST:PORT --tenant T
    tee-perf fleet query --url URL [--tenant T] [--diff A B]

And schedule-space exploration (see docs/exploration.md)::

    tee-perf explore [--workload record-path] [--trials N] [--seed S]
                     [--policy random|all|...] [--systematic] [-o OUT]

which runs a concurrency workload under many adversarial thread
schedules and gates on the detector stack (deadlock/livelock, lockset
races, recorder oracles); exit status 0 means every schedule upheld
every invariant.
"""

import argparse
import os
import sys
import threading
import time
from collections import Counter

from repro.core.analyzer import Analyzer
from repro.core.diff import AnalysisDiff
from repro.core.errors import LogFormatError, RecoveryError
from repro.core.export import (
    to_callgrind,
    to_gprof,
    to_json,
    to_metrics,
    to_speedscope,
)
from repro.core.flamegraph import FlameGraph
from repro.core.instrument import symbol
from repro.core.log import KIND_CALL, LogStream, open_log
from repro.core.options import (
    add_analyze_arguments,
    add_record_arguments,
    analyze_options_from_args,
    record_options_from_args,
)
from repro.core.profiler import TEEPerf
from repro.core.recovery import recover_log
from repro.symbols import BinaryImage
from repro.tee import platform_by_name


def cmd_inspect(args):
    # Big logs stream through mmap; small ones load whole (open_log
    # picks, so inspect never slurps a multi-gigabyte file).
    log = open_log(args.log)
    try:
        print(f"TEE-Perf log: {args.log}")
        print(f"  version:        {log.version}")
        print(f"  pid:            {log.pid}")
        print(f"  multithreaded:  {log.multithread}")
        print(f"  active flag:    {log.active}")
        print(f"  capacity:       {log.capacity} entries")
        print(f"  entries:        {len(log)}")
        print(f"  profiler addr:  {log.profiler_addr:#x}")
        calls = rets = 0
        threads = Counter()
        lo = hi = None
        for cols in log.iter_column_chunks():
            kinds, counters, _, tids, _ = cols.as_lists()
            calls += kinds.count(KIND_CALL)
            rets += len(kinds) - kinds.count(KIND_CALL)
            threads.update(tids)
            if counters:
                lo = min(counters) if lo is None else min(lo, min(counters))
                hi = max(counters) if hi is None else max(hi, max(counters))
        print(f"  calls/returns:  {calls}/{rets}")
        print(f"  threads:        {len(threads)}")
        if lo is not None:
            print(f"  counter span:   {lo} .. {hi}")
        for tid, count in threads.most_common(10):
            print(f"    thread {tid}: {count} events")
    finally:
        if hasattr(log, "close"):
            log.close()
    return 0


def cmd_analyze(args):
    """Offline stage 3: log + symbol table -> reports."""
    image_path = args.image or f"{args.log}.symtab.json"
    try:
        with open(image_path) as fh:
            image = BinaryImage.from_json(fh.read())
    except FileNotFoundError:
        print(
            f"no symbol table at {image_path}; pass --image",
            file=sys.stderr,
        )
        return 1
    try:
        analysis = Analyzer(image).analyze(
            args.log, options=analyze_options_from_args(args)
        )
    except RecoveryError as exc:
        print(f"strict recovery refused the log: {exc}", file=sys.stderr)
        if exc.report is not None:
            print(exc.report.report(), file=sys.stderr)
        return 1
    if args.format == "report":
        print(analysis.report(top=args.top))
    elif args.format == "gprof":
        print(to_gprof(analysis, top=args.top))
    elif args.format == "callgrind":
        print(to_callgrind(analysis))
    elif args.format == "speedscope":
        print(to_speedscope(analysis))
    elif args.format == "json":
        print(to_json(analysis))
    elif args.format == "metrics":
        print(to_metrics(analysis), end="")
    elif args.format == "folded":
        print(FlameGraph.from_analysis(analysis).to_folded(), end="")
    if args.stats:
        print()
        print(analysis.pipeline.report())
    if analysis.recovery is not None and not analysis.recovery.ok:
        # stderr: --format metrics/folded/json stdout must stay parseable.
        print(analysis.recovery.report(), file=sys.stderr)
    return 0


def cmd_recover(args):
    """Salvage a damaged log into a clean one, with a full report."""
    try:
        salvaged, report = recover_log(args.log, repair=args.repair_tails)
    except LogFormatError as exc:
        print(f"cannot recover: {exc}", file=sys.stderr)
        return 1
    output = args.output or f"{args.log}.recovered"
    salvaged.dump(output)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.report())
        print(f"\nwrote {output} ({len(salvaged)} entries)")
    if args.strict and not report.ok:
        print("recover --strict: log was damaged", file=sys.stderr)
        return 1
    return 0


def cmd_convert(args):
    """Re-encode a log between fixed-width (rev 1.0/1.1) and
    compressed columnar (rev 1.2), with round-trip accounting."""
    from repro.core.columnar import ColumnarLog, encode_log

    try:
        log = open_log(args.log, mmap_threshold=float("inf"))
    except (OSError, LogFormatError) as exc:
        print(f"cannot convert: {exc}", file=sys.stderr)
        return 1
    was_compressed = isinstance(log, ColumnarLog)
    to_columnar = not was_compressed if args.to is None \
        else args.to == "1.2"
    in_size = os.path.getsize(args.log)
    entries = len(log)
    if to_columnar == was_compressed:
        direction = "rev 1.2" if was_compressed else "fixed-width"
        print(f"{args.log} is already {direction}; nothing to do")
        if was_compressed:
            log.close()
        return 0
    suffix = ".tpc" if to_columnar else ".teeperf"
    output = args.output or f"{os.path.splitext(args.log)[0]}{suffix}"
    if to_columnar:
        image = encode_log(log, sort_by_thread=not args.no_sort)
        with open(output, "wb") as fh:
            fh.write(image)
        out_size = len(image)
        # Round-trip check: the compressed image must decode to the
        # same entries before we call the conversion good.
        back = ColumnarLog(image)
        ok = len(back) == entries
    else:
        expanded = log.to_shared_log()
        expanded.dump(output)
        out_size = os.path.getsize(output)
        back = expanded
        ok = len(back) == entries
        log.close()
    ratio = in_size / out_size if out_size else 0.0
    print(f"converted {args.log} -> {output}")
    print(f"  entries:   {entries}")
    print(f"  in:        {in_size} bytes")
    print(f"  out:       {out_size} bytes")
    print(
        f"  ratio:     {ratio:.2f}x "
        f"{'smaller' if ratio >= 1 else 'larger'}"
    )
    print(
        f"  round trip: {len(back)}/{entries} entries "
        f"{'OK' if ok else 'MISMATCH'}"
    )
    if not ok:
        print("conversion round trip failed", file=sys.stderr)
        return 1
    return 0


def _load_analysis(log_path, image_path):
    image_path = image_path or f"{log_path}.symtab.json"
    with open(image_path) as fh:
        image = BinaryImage.from_json(fh.read())
    return Analyzer(image).analyze(log_path)


def cmd_diff(args):
    """Differential profile of two runs (before vs after a change)."""
    try:
        before = _load_analysis(args.before, args.before_image)
        after = _load_analysis(args.after, args.after_image)
    except FileNotFoundError as exc:
        print(f"missing input: {exc.filename}", file=sys.stderr)
        return 1
    diff = AnalysisDiff(before, after)
    print(diff.report(top=args.top))
    if args.svg:
        diff.flamegraph(
            title=f"diff: {args.before} -> {args.after}"
        ).write_svg(args.svg)
        print(f"\ndifferential flame graph written to {args.svg}")
    return 0


def cmd_flamegraph(args):
    folded = {}
    with open(args.folded) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            stack, _, count = line.rpartition(" ")
            if not stack or not count.isdigit():
                print(
                    f"{args.folded}:{lineno}: not a folded-stacks line",
                    file=sys.stderr,
                )
                return 1
            folded[tuple(stack.split(";"))] = folded.get(
                tuple(stack.split(";")), 0
            ) + int(count)
    graph = FlameGraph(folded, title=args.title)
    graph.write_svg(args.output, width=args.width)
    print(f"wrote {args.output} ({graph.total_ticks()} total ticks)")
    return 0


class _DemoApp:
    """A tiny two-phase workload for the demo command."""

    def __init__(self, env):
        self.env = env

    @symbol("demo::Main()")
    def main(self):
        for _ in range(50):
            self.parse()
            self.process()

    @symbol("demo::Parse()")
    def parse(self):
        self.env.compute(20_000)
        self.env.mem_read(4_096)

    @symbol("demo::Process()")
    def process(self):
        self.env.compute(60_000)
        self.env.syscall("write")


def cmd_demo(args):
    platform = platform_by_name(args.platform)
    perf = TEEPerf.simulated(
        platform=platform, name="demo",
        record=record_options_from_args(args),
    )
    app = _DemoApp(perf.env)
    perf.compile_instance(app)
    perf.record(app.main)
    analysis = perf.analyze()
    print(analysis.report())
    import pathlib

    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    log_path = out / "demo.teeperf"
    svg_path = out / "demo_flamegraph.svg"
    perf.persist(str(log_path))
    perf.flamegraph(title=f"demo on {platform.name}").write_svg(
        str(svg_path)
    )
    print(f"\nwrote {log_path} and {svg_path}")
    print(f"try: tee-perf inspect {log_path}")
    return 0


def cmd_monitor(args):
    """Live monitoring: run a Phoenix workload under the profiler with
    a monitor attached, serve scrapes, evaluate alert rules."""
    from repro.monitor import (
        ConsoleSink,
        MemorySink,
        Monitor,
        MonitorServer,
        RuleSyntaxError,
        parse_rules,
    )
    from repro.phoenix.runner import workload_by_name

    monitor = Monitor(interval=args.interval)
    if args.rules:
        try:
            with open(args.rules) as fh:
                monitor.add_rules(parse_rules(fh.read()))
        except OSError as exc:
            print(f"cannot read rules file: {exc}", file=sys.stderr)
            return 1
        except RuleSyntaxError as exc:
            print(f"bad rules file: {exc}", file=sys.stderr)
            return 1
    monitor.add_sink(ConsoleSink())
    fired = monitor.add_sink(MemorySink())

    try:
        platform = platform_by_name(args.platform)
        workload_cls = workload_by_name(args.workload)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 1
    params = {}
    for item in args.param or ():
        key, sep, value = item.partition("=")
        if not sep:
            print(f"--param needs key=value, got {item!r}", file=sys.stderr)
            return 1
        params[key] = int(value)

    perf = TEEPerf.simulated(
        platform=platform,
        name=workload_cls.NAME,
        monitor=monitor,
        record=record_options_from_args(args),
    )
    workload = workload_cls(perf.machine, perf.env, **params)
    perf.compile_instance(workload)

    server = None
    if not args.once:
        server = MonitorServer(monitor, port=args.port)
        port = server.start()
        print(f"monitor: serving {server.url}/metrics "
              f"(snapshot at {server.url}/snapshot.json)")
        sys.stdout.flush()

    monitor.start()
    failure = []

    def run():
        try:
            perf.record(workload.run)
        except Exception as exc:  # noqa: BLE001 — reported below
            failure.append(exc)

    worker = threading.Thread(
        target=run, name="tee-perf-monitored-workload", daemon=True
    )
    worker.start()
    worker.join()
    if failure:
        monitor.stop()
        if server is not None:
            server.stop()
        print(f"workload failed: {failure[0]}", file=sys.stderr)
        return 1
    perf.analyze()  # attaches the pipeline sampler and polls once

    if args.duration > 0 and server is not None:
        print(f"monitor: workload done; serving {args.duration:g}s more")
        sys.stdout.flush()
        time.sleep(args.duration)
    monitor.stop()
    if server is not None:
        server.stop()

    if args.once:
        print(monitor.exposition(), end="")
    samples = int(monitor.registry.value("monitor_samples_total", 0))
    families = len(monitor.registry)
    alerts = len(fired.fired())
    print(
        f"monitor: {samples} sampling passes, {families} metric "
        f"families, {alerts} alert(s) fired",
        file=sys.stderr,
    )
    return 0


def cmd_fleet_serve(args):
    """Boot the continuous-profiling daemon: socket ingest + HTTP
    queries + the monitor scrape surface, until --duration elapses
    (0 = serve until interrupted)."""
    from repro.fleet import FleetDaemon, FleetServer, IngestListener

    daemon = FleetDaemon(
        window_seconds=args.window,
        retention=args.retention,
        jobs=args.jobs,
    )
    daemon.start()
    listener = IngestListener(daemon, port=args.ingest_port)
    ingest_port = listener.start()
    server = FleetServer(daemon, port=args.port)
    server.start()
    print(f"fleet: ingest on 127.0.0.1:{ingest_port}")
    print(f"fleet: queries at {server.url}/profiles "
          f"(status at {server.url}/fleet)")
    sys.stdout.flush()
    try:
        if args.duration > 0:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        listener.stop()
        server.stop()
        daemon.stop()
    status = daemon.status()
    counters = status["counters"]
    print(
        f"fleet: served {counters.get('segments_analyzed', 0)} "
        f"segment(s) from {counters.get('sessions_opened', 0)} "
        f"session(s) across {status['store']['tenants']} tenant(s)",
        file=sys.stderr,
    )
    return 0


def cmd_fleet_ingest(args):
    """Publish a persisted log to a running daemon as one session."""
    import json

    from repro.fleet import FleetClient, ProtocolError

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(
            f"--connect needs HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 1
    image_path = args.image or f"{args.log}.symtab.json"
    try:
        with open(image_path) as fh:
            symtab = fh.read()
        with open(args.log, "rb") as fh:
            log_bytes = fh.read()
    except FileNotFoundError as exc:
        print(f"missing input: {exc.filename}", file=sys.stderr)
        return 1
    try:
        with FleetClient((host, int(port))).open(
            args.tenant, symtab, session=args.session
        ) as client:
            client.publish(log_bytes, via_shm=args.shm)
            accounting = client.bye()["accounting"]
    except (OSError, ProtocolError) as exc:
        print(f"ingest failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(accounting, indent=2))
    if accounting["quarantined"]:
        print(
            f"note: {accounting['quarantined']} entries quarantined "
            "(salvage accounting above)",
            file=sys.stderr,
        )
    return 0


def cmd_fleet_query(args):
    """Read a running daemon's profiles over HTTP."""
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")
    if args.diff:
        if not args.tenant:
            print("--diff needs --tenant", file=sys.stderr)
            return 1
        a, b = args.diff
        path = (
            f"/profiles/{args.tenant}/diff?a={a}&b={b}"
            f"&format={args.format}"
        )
    elif args.tenant:
        suffix = {"json": "", "folded": "/folded",
                  "svg": "/flamegraph.svg"}.get(args.format)
        if suffix is None:
            print(
                f"--format {args.format} needs --diff", file=sys.stderr
            )
            return 1
        path = f"/profiles/{args.tenant}{suffix}"
    else:
        path = "/fleet" if args.status else "/profiles"
    try:
        with urllib.request.urlopen(base + path, timeout=30) as resp:
            body = resp.read().decode()
    except urllib.error.HTTPError as exc:
        print(exc.read().decode(), file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {base}: {exc}", file=sys.stderr)
        return 1
    print(body, end="" if body.endswith("\n") else "\n")
    return 0


def cmd_explore(args):
    """Hammer a workload across adversarial schedules.

    Exit status is the gate: 0 when every schedule upheld every
    invariant, 1 when any detector fired (the report, the failing
    schedules' traces and — unless ``--no-minimize`` — a minimal
    forced-choice repro all land in the ``--out`` JSON artifact).
    """
    import json

    from repro.explore import Explorer, ExploreOptions, workload_by_name

    if args.list:
        from repro.explore import WORKLOADS

        for name, (description, _) in sorted(WORKLOADS.items()):
            print(f"  {name:18} {description}")
        return 0
    try:
        factory = workload_by_name(args.workload, quick=args.quick)
        options = ExploreOptions(
            trials=args.trials,
            seed=args.seed,
            policy=args.policy,
            mode="systematic" if args.systematic else "random",
            cores=args.cores,
            max_steps=args.max_steps,
            stop_on_finding=args.stop_on_finding,
            keep_traces=args.out is not None and args.keep_traces,
            minimize=not args.no_minimize,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    report = Explorer(factory, options).run()
    print(report.report())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"  artifact: {args.out}")
    return 0 if report.ok else 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="tee-perf",
        description="TEE-Perf: a profiler for trusted execution "
        "environments (DSN'19 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser("inspect", help="describe a persisted log")
    inspect.add_argument("log", help="path to a .teeperf log file")
    inspect.set_defaults(fn=cmd_inspect)

    analyze = sub.add_parser(
        "analyze", help="analyze a persisted log offline"
    )
    analyze.add_argument("log", help="path to a .teeperf log file")
    analyze.add_argument(
        "--image", help="symbol table JSON (default: <log>.symtab.json)"
    )
    analyze.add_argument(
        "--format",
        choices=(
            "report", "gprof", "callgrind", "speedscope", "json",
            "metrics", "folded",
        ),
        default="report",
    )
    analyze.add_argument("--top", type=int, default=20)
    add_analyze_arguments(analyze)
    analyze.add_argument(
        "--stats",
        action="store_true",
        help="print the pipeline counters after the output",
    )
    analyze.set_defaults(fn=cmd_analyze)

    recover = sub.add_parser(
        "recover", help="salvage a damaged or truncated log"
    )
    recover.add_argument("log", help="path to a damaged .teeperf log")
    recover.add_argument(
        "-o", "--output",
        help="where to write the salvaged log "
        "(default: <log>.recovered)",
    )
    recover.add_argument(
        "--repair-tails",
        action="store_true",
        help="balance unmatched CALL/RET tails in the salvaged log",
    )
    recover.add_argument(
        "--json",
        action="store_true",
        help="print the salvage report as JSON instead of text",
    )
    recover.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when anything was quarantined",
    )
    recover.set_defaults(fn=cmd_recover)

    convert = sub.add_parser(
        "convert",
        help="re-encode a log between fixed-width and rev 1.2 columnar",
    )
    convert.add_argument("log", help="path to a .teeperf log file")
    convert.add_argument(
        "-o", "--output",
        help="where to write the converted log "
        "(default: <log>.tpc for rev 1.2, <log>.teeperf back)",
    )
    convert.add_argument(
        "--to",
        choices=("1.2", "1.0"),
        default=None,
        help="target format (default: the one the input is not)",
    )
    convert.add_argument(
        "--no-sort",
        action="store_true",
        help="keep the global entry order when compressing "
        "(per-thread order is preserved either way)",
    )
    convert.set_defaults(fn=cmd_convert)

    diff = sub.add_parser(
        "diff", help="compare two runs (before vs after a change)"
    )
    diff.add_argument("before", help="baseline .teeperf log")
    diff.add_argument("after", help="changed .teeperf log")
    diff.add_argument("--before-image", help="symtab for the baseline")
    diff.add_argument("--after-image", help="symtab for the changed run")
    diff.add_argument("--top", type=int, default=15)
    diff.add_argument("--svg", help="write a differential flame graph")
    diff.set_defaults(fn=cmd_diff)

    flame = sub.add_parser(
        "flamegraph", help="render folded stacks into an SVG"
    )
    flame.add_argument("folded", help="folded-stacks text file")
    flame.add_argument("-o", "--output", default="flamegraph.svg")
    flame.add_argument("--title", default="TEE-Perf Flame Graph")
    flame.add_argument("--width", type=int, default=1200)
    flame.set_defaults(fn=cmd_flamegraph)

    demo = sub.add_parser("demo", help="run a small simulated profile")
    demo.add_argument("--platform", default="sgx-v1")
    demo.add_argument("-o", "--output", default="tee-perf-demo")
    add_record_arguments(demo)
    demo.set_defaults(fn=cmd_demo)

    mon = sub.add_parser(
        "monitor",
        help="run a workload with live metrics, scrapes and alerts",
    )
    mon.add_argument(
        "--workload",
        default="histogram",
        help="Phoenix workload to run under the profiler",
    )
    mon.add_argument("--platform", default="sgx-v1")
    mon.add_argument(
        "--port",
        type=int,
        default=0,
        help="scrape-endpoint port (0 picks a free one)",
    )
    mon.add_argument(
        "--interval",
        type=float,
        default=0.05,
        help="seconds between sampling passes",
    )
    mon.add_argument(
        "--rules", help="alert-rules file (see docs/monitoring.md)"
    )
    mon.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="keep serving this many seconds after the workload ends",
    )
    mon.add_argument(
        "--once",
        action="store_true",
        help="no endpoint: run, then print one exposition to stdout",
    )
    mon.add_argument(
        "--param",
        action="append",
        metavar="KEY=INT",
        help="workload constructor parameter (repeatable)",
    )
    add_record_arguments(mon)
    mon.set_defaults(fn=cmd_monitor)

    fleet = sub.add_parser(
        "fleet",
        help="the continuous-profiling service (see docs/fleet.md)",
    )
    fleet_sub = fleet.add_subparsers(dest="mode", required=True)

    serve = fleet_sub.add_parser(
        "serve", help="run the ingest daemon and its query endpoint"
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="HTTP query/scrape port (0 picks a free one)",
    )
    serve.add_argument(
        "--ingest-port", type=int, default=0,
        help="producer ingest socket port (0 picks a free one)",
    )
    serve.add_argument(
        "--window", type=float, default=60.0,
        help="aggregation window width in seconds",
    )
    serve.add_argument(
        "--retention", type=int, default=32,
        help="addressable windows kept per tenant before archiving",
    )
    serve.add_argument(
        "--jobs", type=int, default=2,
        help="analysis worker-pool size",
    )
    serve.add_argument(
        "--duration", type=float, default=0.0,
        help="serve this many seconds then exit (0 = until Ctrl-C)",
    )
    serve.set_defaults(fn=cmd_fleet_serve)

    ingest = fleet_sub.add_parser(
        "ingest", help="publish a persisted log to a running daemon"
    )
    ingest.add_argument("log", help="path to a .teeperf log file")
    ingest.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the daemon's ingest socket",
    )
    ingest.add_argument(
        "--tenant", default="default", help="tenant to file under"
    )
    ingest.add_argument(
        "--session", help="session name (default: generated)"
    )
    ingest.add_argument(
        "--image", help="symbol table JSON (default: <log>.symtab.json)"
    )
    ingest.add_argument(
        "--shm", action="store_true",
        help="hand the image over via shared memory",
    )
    ingest.set_defaults(fn=cmd_fleet_ingest)

    query = fleet_sub.add_parser(
        "query", help="read profiles from a running daemon"
    )
    query.add_argument(
        "--url", required=True, help="the daemon's HTTP endpoint"
    )
    query.add_argument(
        "--tenant", help="tenant to read (default: list tenants)"
    )
    query.add_argument(
        "--diff", nargs=2, metavar=("A", "B"),
        help="compare window A (before) against window B (after)",
    )
    query.add_argument(
        "--format",
        choices=("json", "report", "folded", "svg"),
        default="json",
    )
    query.add_argument(
        "--status", action="store_true",
        help="fetch /fleet daemon status instead of the tenant index",
    )
    query.set_defaults(fn=cmd_fleet_query)

    explore = sub.add_parser(
        "explore",
        help="hammer a workload across adversarial thread schedules",
    )
    explore.add_argument(
        "--workload", default="record-path",
        help="registered workload to explore (see --list)",
    )
    explore.add_argument(
        "--list", action="store_true",
        help="list the registered workloads and exit",
    )
    explore.add_argument(
        "--policy", default="random",
        help="schedule policy, or 'all' to rotate the whole registry",
    )
    explore.add_argument(
        "--trials", type=int, default=100,
        help="schedules to run (or the systematic branch budget)",
    )
    explore.add_argument(
        "--seed", type=int, default=0, help="root seed for the sweep"
    )
    explore.add_argument(
        "--systematic", action="store_true",
        help="DPOR-lite: branch on observed contention points instead "
        "of random sampling",
    )
    explore.add_argument(
        "--cores", type=int, default=2,
        help="cores of the simulated machine",
    )
    explore.add_argument(
        "--max-steps", type=int, default=100_000,
        help="scheduling-step budget per run (exceeding it is a "
        "livelock finding)",
    )
    explore.add_argument(
        "--quick", action="store_true",
        help="smaller workload presets for smoke runs",
    )
    explore.add_argument(
        "--stop-on-finding", action="store_true",
        help="stop the sweep at the first failing schedule",
    )
    explore.add_argument(
        "--no-minimize", action="store_true",
        help="skip shrinking the first failing schedule",
    )
    explore.add_argument(
        "--keep-traces", action="store_true",
        help="include passing runs' schedule traces in the artifact",
    )
    explore.add_argument(
        "-o", "--out",
        help="write the full report (findings, traces, minimized "
        "repro) as JSON",
    )
    explore.set_defaults(fn=cmd_explore)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
