"""Simulated binary, symbol and debug-information substrate.

Stands in for the binutils pipeline the paper's analyzer shells out to
(`readelf`, `addr2line`, `c++filt`): the compiler stage lays functions
out in a :class:`BinaryImage`, the recorder logs runtime addresses, and
the analyzer resolves them back through :class:`SymbolTable` after
recovering the relocation offset from the log header.
"""

from repro.symbols.image import (
    BinaryImage,
    LoadedImage,
    relocation_offset,
)
from repro.symbols.mangle import MangleError, demangle, mangle
from repro.symbols.symtab import (
    CachedResolver,
    Symbol,
    SymbolLookupError,
    SymbolTable,
)

__all__ = [
    "BinaryImage",
    "CachedResolver",
    "LoadedImage",
    "MangleError",
    "Symbol",
    "SymbolLookupError",
    "SymbolTable",
    "demangle",
    "mangle",
    "relocation_offset",
]
