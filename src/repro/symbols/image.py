"""Simulated binary images.

The "compiler" stage lays out every instrumented function in the text
section of a :class:`BinaryImage`, assigning each a link-time address.
At run time the image is *loaded* at an ASLR-style offset; log entries
record runtime addresses, and the analyzer recovers the relocation
offset from the well-known profiler address the recorder stores in the
log header (Figure 2a), exactly as the paper describes for relocatable
code.
"""

from repro.symbols.symtab import Symbol, SymbolTable

DEFAULT_LINK_BASE = 0x400000  # traditional ELF executable base
_ALIGN = 16


class BinaryImage:
    """A text-section layout with a symbol table.

    Functions are added in compilation order; each receives an aligned
    link-time address and a size (our stand-in for machine code is four
    bytes per "instruction").
    """

    # The well-known entry the recorder writes into the log header so
    # the analyzer can compute the relocation offset.
    PROFILER_SYMBOL = "__tee_perf_profiler"

    def __init__(self, name, link_base=DEFAULT_LINK_BASE):
        self.name = name
        self.link_base = link_base
        self.symtab = SymbolTable()
        self._cursor = link_base
        # The injected profiler itself is always present and, as in the
        # paper, marked no-instrument.
        self.profiler_addr = self.add_function(
            self.PROFILER_SYMBOL, size=389 * 4, file="profiler.h", line=1
        )

    def add_function(self, symbol_name, size=64, file=None, line=None):
        """Lay out one function; returns its link-time address."""
        if size <= 0:
            raise ValueError(f"function size must be positive: {size}")
        addr = self._cursor
        self.symtab.add(Symbol(symbol_name, addr, size, file, line))
        self._cursor = _align_up(addr + size, _ALIGN)
        return addr

    def text_size(self):
        """Bytes of laid-out text."""
        return self._cursor - self.link_base

    def to_json(self):
        """Serialise the image (the "binary + debug info" artefact the
        analyzer needs next to a persisted log)."""
        import json

        return json.dumps(
            {
                "name": self.name,
                "link_base": self.link_base,
                "profiler_addr": self.profiler_addr,
                "symbols": [
                    {
                        "name": sym.name,
                        "addr": sym.addr,
                        "size": sym.size,
                        "file": sym.file,
                        "line": sym.line,
                    }
                    for sym in self.symtab
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text):
        """Rebuild an image from :meth:`to_json` output."""
        import json

        from repro.symbols.symtab import Symbol

        data = json.loads(text)
        image = cls.__new__(cls)
        image.name = data["name"]
        image.link_base = data["link_base"]
        image.symtab = SymbolTable()
        cursor = image.link_base
        for raw in data["symbols"]:
            image.symtab.add(
                Symbol(
                    raw["name"],
                    raw["addr"],
                    raw["size"],
                    raw.get("file"),
                    raw.get("line"),
                )
            )
            cursor = max(cursor, _align_up(raw["addr"] + raw["size"], _ALIGN))
        image._cursor = cursor
        image.profiler_addr = data["profiler_addr"]
        return image

    def load(self, aslr_seed=0):
        """Map the image at a deterministic ASLR-style offset."""
        offset = 0
        if aslr_seed:
            # Page-aligned pseudo-random slide derived from the seed.
            offset = ((aslr_seed * 2654435761) & 0x7FFFF000) + 0x1000
        return LoadedImage(self, offset)

    def __repr__(self):
        return (
            f"BinaryImage({self.name!r}, {len(self.symtab)} symbols, "
            f"text={self.text_size()} bytes)"
        )


class LoadedImage:
    """A binary image mapped at ``link address + offset``."""

    def __init__(self, image, offset):
        self.image = image
        self.offset = offset

    @property
    def profiler_addr(self):
        """Runtime address of the well-known profiler entry."""
        return self.image.profiler_addr + self.offset

    def runtime_addr(self, link_addr):
        """Translate a link-time address to its runtime location."""
        return link_addr + self.offset

    def link_addr(self, runtime_addr):
        """Translate a runtime address back to link time."""
        return runtime_addr - self.offset

    def __repr__(self):
        return f"LoadedImage({self.image.name!r}, offset={self.offset:#x})"


def relocation_offset(image, profiler_runtime_addr):
    """Recover the load offset from the header's profiler address.

    This is what the analyzer does with the Figure-2a ``address of
    profiler`` field before resolving any other address.
    """
    return profiler_runtime_addr - image.profiler_addr


def _align_up(value, align):
    return (value + align - 1) & ~(align - 1)
