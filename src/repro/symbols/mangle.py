"""Itanium-flavoured name mangling and a c++filt equivalent.

The paper's analyzer leans on binutils (`addr2line`, `readelf`,
`c++filt`) to turn raw instruction addresses back into human-readable
C++ names.  This module provides the name-encoding half of that: a
mangler the "compiler" stage uses when it lays out the simulated
binary, and the matching demangler the analyzer uses when reporting.

The scheme follows the Itanium C++ ABI for the constructs we need:

* plain C names are left untouched (``main`` stays ``main``);
* ``ns::Class::method(...)`` becomes ``_ZN2ns5Class6methodE`` followed
  by encoded parameter types;
* a small table covers the common builtin parameter types; anything
  else is encoded as a length-prefixed source name, which keeps the
  encoding self-inverse even for types we do not model.

Deviations from the full ABI (no substitutions, no templates) are
deliberate: the encoding only needs to roundtrip through *our* tools.
"""

import functools
import re

_BUILTIN_TO_CODE = {
    "void": "v",
    "bool": "b",
    "char": "c",
    "int": "i",
    "unsigned": "j",
    "unsigned int": "j",
    "long": "l",
    "unsigned long": "m",
    "double": "d",
    "float": "f",
}
_CODE_TO_BUILTIN = {code: name for name, code in _BUILTIN_TO_CODE.items()}
# Collapse aliases so decode is deterministic.
_CODE_TO_BUILTIN["j"] = "unsigned int"

_IDENT = re.compile(r"[A-Za-z_~][A-Za-z0-9_]*")


class MangleError(ValueError):
    """A name could not be mangled or demangled."""


def _split_qualified(qualified):
    """Split ``a::b::c`` into components, respecting nothing fancier."""
    parts = [p for p in qualified.split("::")]
    if not parts or any(not p for p in parts):
        raise MangleError(f"malformed qualified name: {qualified!r}")
    return parts


def _encode_type(type_name):
    type_name = type_name.strip()
    pointer = type_name.endswith("*")
    base = type_name[:-1].strip() if pointer else type_name
    code = _BUILTIN_TO_CODE.get(base)
    if code is None:
        if not base:
            raise MangleError(f"empty parameter type in {type_name!r}")
        code = f"{len(base)}{base}"
    return ("P" + code) if pointer else code


def _decode_type(encoded, pos):
    pointer = False
    if encoded[pos] == "P":
        pointer = True
        pos += 1
    ch = encoded[pos]
    if ch.isdigit():
        digits = ""
        while pos < len(encoded) and encoded[pos].isdigit():
            digits += encoded[pos]
            pos += 1
        length = int(digits)
        base = encoded[pos : pos + length]
        if len(base) != length:
            raise MangleError(f"truncated source name in {encoded!r}")
        pos += length
    else:
        base = _CODE_TO_BUILTIN.get(ch)
        if base is None:
            raise MangleError(f"unknown type code {ch!r} in {encoded!r}")
        pos += 1
    return (base + "*" if pointer else base), pos


def mangle(pretty):
    """Encode a pretty name into its linker symbol.

    ``main`` -> ``main``; ``rocksdb::Stats::Now()`` ->
    ``_ZN7rocksdb5Stats3NowEv``.
    """
    pretty = pretty.strip()
    if not pretty:
        raise MangleError("empty name")
    if "(" in pretty:
        head, _, tail = pretty.partition("(")
        if not tail.endswith(")"):
            raise MangleError(f"unbalanced parameter list: {pretty!r}")
        params = tail[:-1].strip()
        qualified = head.strip()
    else:
        params = None
        qualified = pretty
    if "::" not in qualified and params is None:
        if not _IDENT.fullmatch(qualified):
            raise MangleError(f"not a valid C identifier: {qualified!r}")
        return qualified  # plain C symbol
    parts = _split_qualified(qualified)
    for part in parts:
        if not _IDENT.fullmatch(part):
            raise MangleError(f"invalid name component {part!r} in {pretty!r}")
    encoded = "_Z"
    if len(parts) > 1:
        encoded += "N" + "".join(f"{len(p)}{p}" for p in parts) + "E"
    else:
        encoded += f"{len(parts[0])}{parts[0]}"
    if params is None or params in ("", "void"):
        encoded += "v"
    else:
        for param in params.split(","):
            encoded += _encode_type(param)
    return encoded


@functools.lru_cache(maxsize=8192)
def demangle(symbol):
    """Decode a linker symbol back to its pretty form (c++filt).

    Unmangled (C) names are returned unchanged, matching c++filt.
    Memoised: ``Symbol.pretty`` is on the analyzer's per-entry path and
    a binary has few distinct symbols.
    """
    if not symbol.startswith("_Z"):
        return symbol
    pos = 2
    parts = []
    if pos < len(symbol) and symbol[pos] == "N":
        pos += 1
        while pos < len(symbol) and symbol[pos] != "E":
            if not symbol[pos].isdigit():
                raise MangleError(f"bad nested name in {symbol!r}")
            digits = ""
            while symbol[pos].isdigit():
                digits += symbol[pos]
                pos += 1
            length = int(digits)
            parts.append(symbol[pos : pos + length])
            if len(parts[-1]) != length:
                raise MangleError(f"truncated component in {symbol!r}")
            pos += length
        if pos >= len(symbol):
            raise MangleError(f"missing E terminator in {symbol!r}")
        pos += 1  # consume E
    else:
        if not symbol[pos].isdigit():
            raise MangleError(f"bad symbol {symbol!r}")
        digits = ""
        while pos < len(symbol) and symbol[pos].isdigit():
            digits += symbol[pos]
            pos += 1
        length = int(digits)
        parts.append(symbol[pos : pos + length])
        if len(parts[-1]) != length:
            raise MangleError(f"truncated component in {symbol!r}")
        pos += length
    params = []
    while pos < len(symbol):
        param, pos = _decode_type(symbol, pos)
        params.append(param)
    qualified = "::".join(parts)
    if params == ["void"]:
        return f"{qualified}()"
    if not params:
        return f"{qualified}()"
    return f"{qualified}({', '.join(params)})"
