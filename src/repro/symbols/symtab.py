"""Symbol tables and the addr2line equivalent.

A :class:`SymbolTable` maps link-time address ranges to symbols and can
answer the two queries the analyzer needs: exact lookup by name and
range lookup by address (binutils' ``addr2line``).  ``dump`` produces a
``readelf --syms``-style listing used by the CLI and the docs.

:class:`CachedResolver` puts an LRU in front of the range lookup: a
profile log names the same few hundred addresses millions of times, so
the analyzer should not re-walk the table (or re-demangle the name)
for every entry.
"""

import bisect
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.symbols.mangle import demangle


@dataclass(frozen=True)
class Symbol:
    """One function in the text section."""

    name: str  # mangled (linker) name
    addr: int
    size: int
    file: str = None
    line: int = None

    @property
    def pretty(self):
        """The demangled, human-readable name (c++filt output)."""
        return demangle(self.name)

    @property
    def end(self):
        return self.addr + self.size

    def contains(self, addr):
        return self.addr <= addr < self.end


class SymbolLookupError(KeyError):
    """An address or name did not resolve to any symbol."""


class SymbolTable:
    """Sorted, non-overlapping function symbols."""

    def __init__(self):
        self._by_name = {}
        self._addrs = []
        self._symbols = []

    def add(self, symbol):
        """Insert a symbol; rejects duplicates and overlapping ranges."""
        if symbol.name in self._by_name:
            raise ValueError(f"duplicate symbol name {symbol.name!r}")
        idx = bisect.bisect_left(self._addrs, symbol.addr)
        if idx < len(self._symbols) and symbol.end > self._symbols[idx].addr:
            raise ValueError(
                f"{symbol.name!r} overlaps {self._symbols[idx].name!r}"
            )
        if idx > 0 and self._symbols[idx - 1].end > symbol.addr:
            raise ValueError(
                f"{symbol.name!r} overlaps {self._symbols[idx - 1].name!r}"
            )
        self._addrs.insert(idx, symbol.addr)
        self._symbols.insert(idx, symbol)
        self._by_name[symbol.name] = symbol

    def by_name(self, name):
        """Exact lookup by mangled name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SymbolLookupError(f"no symbol named {name!r}") from None

    def addr2line(self, addr):
        """Resolve an address inside a function to its symbol.

        Raises :class:`SymbolLookupError` for addresses outside every
        function — the analyzer uses this to dismiss torn records at
        the end of a full log.
        """
        idx = bisect.bisect_right(self._addrs, addr) - 1
        if idx >= 0 and self._symbols[idx].contains(addr):
            return self._symbols[idx]
        raise SymbolLookupError(f"address {addr:#x} is not in any function")

    def resolve(self, addr):
        """Like :meth:`addr2line` but returns ``None`` on a miss."""
        try:
            return self.addr2line(addr)
        except SymbolLookupError:
            return None

    def dump(self):
        """A readelf-style text listing of the table."""
        lines = [
            f"{'Num':>4} {'Value':>18} {'Size':>6} Type    Name",
        ]
        for i, sym in enumerate(self._symbols):
            lines.append(
                f"{i:>4} {sym.addr:#018x} {sym.size:>6} FUNC    {sym.pretty}"
            )
        return "\n".join(lines)

    def __iter__(self):
        return iter(self._symbols)

    def __len__(self):
        return len(self._symbols)

    def __contains__(self, name):
        return name in self._by_name


class CachedResolver:
    """An LRU cache in front of :meth:`SymbolTable.resolve`.

    Misses (addresses outside every function) are cached too — a torn
    log tail hammers the same bogus address, and "not a symbol" is as
    expensive to recompute as a hit.  Thread-safe, because the
    streaming analyzer resolves from concurrent shard workers; `hits`
    and `misses` feed the pipeline's cache-hit-rate counter.
    """

    def __init__(self, symtab, maxsize=65536):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive: {maxsize}")
        self._symtab = symtab
        self._maxsize = maxsize
        self._cache = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def resolve(self, addr):
        """Like :meth:`SymbolTable.resolve`, memoised per address."""
        with self._lock:
            if addr in self._cache:
                self.hits += 1
                self._cache.move_to_end(addr)
                return self._cache[addr]
        symbol = self._symtab.resolve(addr)
        with self._lock:
            self.misses += 1
            self._cache[addr] = symbol
            if len(self._cache) > self._maxsize:
                self._cache.popitem(last=False)
        return symbol

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self):
        return len(self._cache)

    def __repr__(self):
        return (
            f"CachedResolver({len(self._cache)}/{self._maxsize} cached, "
            f"{100 * self.hit_rate:.1f}% hits)"
        )
