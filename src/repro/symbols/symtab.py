"""Symbol tables and the addr2line equivalent.

A :class:`SymbolTable` maps link-time address ranges to symbols and can
answer the two queries the analyzer needs: exact lookup by name and
range lookup by address (binutils' ``addr2line``).  ``dump`` produces a
``readelf --syms``-style listing used by the CLI and the docs.
"""

import bisect
from dataclasses import dataclass

from repro.symbols.mangle import demangle


@dataclass(frozen=True)
class Symbol:
    """One function in the text section."""

    name: str  # mangled (linker) name
    addr: int
    size: int
    file: str = None
    line: int = None

    @property
    def pretty(self):
        """The demangled, human-readable name (c++filt output)."""
        return demangle(self.name)

    @property
    def end(self):
        return self.addr + self.size

    def contains(self, addr):
        return self.addr <= addr < self.end


class SymbolLookupError(KeyError):
    """An address or name did not resolve to any symbol."""


class SymbolTable:
    """Sorted, non-overlapping function symbols."""

    def __init__(self):
        self._by_name = {}
        self._addrs = []
        self._symbols = []

    def add(self, symbol):
        """Insert a symbol; rejects duplicates and overlapping ranges."""
        if symbol.name in self._by_name:
            raise ValueError(f"duplicate symbol name {symbol.name!r}")
        idx = bisect.bisect_left(self._addrs, symbol.addr)
        if idx < len(self._symbols) and symbol.end > self._symbols[idx].addr:
            raise ValueError(
                f"{symbol.name!r} overlaps {self._symbols[idx].name!r}"
            )
        if idx > 0 and self._symbols[idx - 1].end > symbol.addr:
            raise ValueError(
                f"{symbol.name!r} overlaps {self._symbols[idx - 1].name!r}"
            )
        self._addrs.insert(idx, symbol.addr)
        self._symbols.insert(idx, symbol)
        self._by_name[symbol.name] = symbol

    def by_name(self, name):
        """Exact lookup by mangled name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SymbolLookupError(f"no symbol named {name!r}") from None

    def addr2line(self, addr):
        """Resolve an address inside a function to its symbol.

        Raises :class:`SymbolLookupError` for addresses outside every
        function — the analyzer uses this to dismiss torn records at
        the end of a full log.
        """
        idx = bisect.bisect_right(self._addrs, addr) - 1
        if idx >= 0 and self._symbols[idx].contains(addr):
            return self._symbols[idx]
        raise SymbolLookupError(f"address {addr:#x} is not in any function")

    def resolve(self, addr):
        """Like :meth:`addr2line` but returns ``None`` on a miss."""
        try:
            return self.addr2line(addr)
        except SymbolLookupError:
            return None

    def dump(self):
        """A readelf-style text listing of the table."""
        lines = [
            f"{'Num':>4} {'Value':>18} {'Size':>6} Type    Name",
        ]
        for i, sym in enumerate(self._symbols):
            lines.append(
                f"{i:>4} {sym.addr:#018x} {sym.size:>6} FUNC    {sym.pretty}"
            )
        return "\n".join(lines)

    def __iter__(self):
        return iter(self._symbols)

    def __len__(self):
        return len(self._symbols)

    def __contains__(self, name):
        return name in self._by_name
