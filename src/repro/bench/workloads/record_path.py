"""Record-path measurement core: batched write and columnar decode
against faithful reconstructions of the pre-batching code.

The reconstructions (:class:`LegacyLog`, :func:`legacy_decode`) are
the seed's hot path, byte for byte in behaviour: the header flags are
re-read through ``struct.unpack_from`` on *every* event (no memoryview
cast, no mirror), reservation is one fetch-and-add per event, and each
entry is packed individually; decoding materialises one ``LogEntry``
per entry.  They are kept here, frozen, precisely so the speedup
floors keep meaning after the library moves on.  **Do not "fix" this
code — its slowness is the measurement.**
"""

import itertools
import struct
import time

try:
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.api import SharedLog
from repro.core import KIND_CALL, KIND_RET, ThreadLogWriter
from repro.core.log import (
    COUNTER_MASK,
    ENTRY_SIZE_V2,
    FLAG_MASK_CALLS,
    FLAG_MASK_RETS,
    HEADER_SIZE,
    LogEntry,
    _ENTRY,
    _ENTRY_V2,
    _KIND_BIT,
    decode_columns,
)

from repro.bench.timing import best_of

__all__ = [
    "LegacyLog",
    "bench_decode",
    "bench_write",
    "build_event_columns",
    "codec_sizes",
    "decode_sample",
    "legacy_decode",
    "write_sample",
    "zero_copy_sample",
]

#: acceptance floors (ISSUE 3): batched write path >= 3x events/sec,
#: columnar bulk decode >= 5x, both against the pre-batching baseline.
WRITE_FLOOR = 3.0
DECODE_FLOOR = 5.0

#: acceptance floors (ISSUE 8): the bulk zero-copy column path
#: >= 10x events/sec over the frozen per-event baseline, and rev 1.2
#: columnar images >= 3x smaller than the fixed-width rev 1.1 bytes
#: on the standard workload.
ZERO_COPY_FLOOR = 10.0
CODEC_RATIO_FLOOR = 3.0


class LegacyLog:
    """Per-event append exactly as the pre-batching SharedLog did it."""

    def __init__(self, capacity, entry_size=24):
        self._buf = bytearray(HEADER_SIZE + capacity * entry_size)
        struct.pack_into("<Q", self._buf, 8, 0xF)  # ACTIVE | both masks
        self._capacity = capacity
        self._entry_size = entry_size
        self._reservations = itertools.count(0)
        self.dropped = 0

    def _word(self, index):
        return struct.unpack_from("<Q", self._buf, index * 8)[0]

    @property
    def flags(self):
        return self._word(1) & 0xFFFF

    def measures(self, kind):
        flag = FLAG_MASK_CALLS if kind == KIND_CALL else FLAG_MASK_RETS
        return bool(self.flags & flag)

    def try_reserve(self):
        index = next(self._reservations)
        if index >= self._capacity:
            self.dropped += 1
            return None
        return index

    def write_entry(self, index, kind, counter, addr, tid, call_site=0):
        word0 = (counter & COUNTER_MASK) | (_KIND_BIT if kind else 0)
        offset = HEADER_SIZE + index * self._entry_size
        if self._entry_size == ENTRY_SIZE_V2:
            _ENTRY_V2.pack_into(
                self._buf, offset, word0, addr, tid, call_site
            )
        else:
            _ENTRY.pack_into(self._buf, offset, word0, addr, tid)

    def append(self, kind, counter, addr, tid, call_site=0):
        if not self.measures(kind):
            return False
        index = self.try_reserve()
        if index is None:
            return False
        self.write_entry(index, kind, counter, addr, tid, call_site)
        return True


def legacy_decode(buf, count, entry_size=24):
    """One ``unpack_from`` and one LogEntry per entry — the pre-PR
    reader that columnar decode replaced."""
    entries = []
    add = entries.append
    offset = HEADER_SIZE
    if entry_size == ENTRY_SIZE_V2:
        for _ in range(count):
            word0, addr, tid, call_site = _ENTRY_V2.unpack_from(
                buf, offset
            )
            add(LogEntry(word0 >> 63, word0 & COUNTER_MASK, addr, tid,
                         call_site))
            offset += entry_size
    else:
        for _ in range(count):
            word0, addr, tid = _ENTRY.unpack_from(buf, offset)
            add(LogEntry(word0 >> 63, word0 & COUNTER_MASK, addr, tid))
            offset += entry_size
    return entries


def _legacy_write(n_events):
    log = LegacyLog(n_events)
    append = log.append
    for i in range(n_events):
        append(KIND_CALL, i, 0x400000, 7)


def _batched_write(n_events):
    log = SharedLog.create(n_events)
    with ThreadLogWriter(log) as writer:
        append = writer.append
        for i in range(n_events):
            append(KIND_CALL, i, 0x400000, 7)


def write_sample(n_events, inner=2):
    """One paired measurement of the write path.

    Times the legacy per-event append and the batched
    :class:`ThreadLogWriter` back to back — best-of-``inner`` each, so
    additive one-off noise (allocation, paging) cancels out of the
    ratio — and returns ``(t_legacy, t_batched)``.  Pairing inside one
    sample means host noise hits both sides roughly equally, so the
    speedup *ratio* is the stable quantity the harness collects;
    run-to-run variance still shows up across repetitions.
    """
    t_legacy = best_of(lambda: _legacy_write(n_events), inner)
    t_batched = best_of(lambda: _batched_write(n_events), inner)
    return t_legacy, t_batched


def build_event_columns(n_events):
    """The write benchmark's event mix, prebuilt as columns — what a
    columnar producer (the fleet ingest path, a simulator batch)
    already holds before the write."""
    if _np is not None:
        return (
            _np.zeros(n_events, dtype=_np.uint64),  # KIND_CALL
            _np.arange(n_events, dtype=_np.uint64),
            _np.full(n_events, 0x400000, dtype=_np.uint64),
            _np.full(n_events, 7, dtype=_np.uint64),
        )
    return (
        [KIND_CALL] * n_events,
        list(range(n_events)),
        [0x400000] * n_events,
        [7] * n_events,
    )


def _zero_copy_write(n_events, columns):
    log = SharedLog.create(n_events)
    committed = log.append_columns(*columns)
    assert committed == n_events


def zero_copy_sample(n_events, columns, inner=2):
    """One paired measurement of the bulk zero-copy write path.

    Times the frozen legacy per-event append against
    :meth:`SharedLog.append_columns` writing the same events from
    prebuilt columns (one reservation, one vectorised blit — no
    per-event Python work at all); returns ``(t_legacy, t_bulk)``.
    """
    t_legacy = best_of(lambda: _legacy_write(n_events), inner)
    t_bulk = best_of(lambda: _zero_copy_write(n_events, columns), inner)
    return t_legacy, t_bulk


def codec_sizes(log):
    """``(fixed_width_bytes, rev12_bytes)`` for one log, with the
    entry-exact round trip asserted outside any timed region."""
    from repro.core.columnar import ColumnarLog, encode_log

    raw = log.to_bytes()
    image = encode_log(log)
    assert len(ColumnarLog(image)) == len(log)
    return len(raw), len(image)


def build_filled_log(n_entries):
    """A full in-memory log with the decode benchmark's entry mix."""
    log = SharedLog.create(n_entries)
    append = log.append
    for i in range(n_entries):
        kind = KIND_RET if i & 1 else KIND_CALL
        append(kind, i * 3, 0x400000 + i, 1 + i % 4)
    log._store_tail()
    return log


def decode_sample(buf, version, n_entries):
    """One paired measurement of the decode path; ``(t_legacy,
    t_columnar)``.  Both sides must decode every entry (asserted)."""
    start = time.perf_counter()
    n_legacy = len(legacy_decode(buf, n_entries))
    t_legacy = time.perf_counter() - start
    start = time.perf_counter()
    n_columnar = len(decode_columns(buf, version, 0, n_entries))
    t_columnar = time.perf_counter() - start
    assert n_legacy == n_entries and n_columnar == n_entries
    return t_legacy, t_columnar


def bench_write(n_events, repeats):
    """events/sec: legacy per-event append vs batched ThreadLogWriter
    (best-of-``repeats``, the standalone scripts' point estimate)."""
    t_legacy = best_of(lambda: _legacy_write(n_events), repeats)
    t_batched = best_of(lambda: _batched_write(n_events), repeats)
    return {
        "events": n_events,
        "legacy_events_per_sec": n_events / t_legacy,
        "batched_events_per_sec": n_events / t_batched,
        "legacy_ns_per_event": t_legacy / n_events * 1e9,
        "batched_ns_per_event": t_batched / n_events * 1e9,
        "speedup": t_legacy / t_batched,
        "floor": WRITE_FLOOR,
    }


def bench_decode(n_entries, repeats):
    """entries/sec: per-entry LogEntry decode vs columnar bulk decode
    (best-of-``repeats``)."""
    log = build_filled_log(n_entries)
    buf = log.to_bytes()

    sink = []

    def legacy():
        sink.append(len(legacy_decode(buf, n_entries)))

    def columnar():
        sink.append(len(decode_columns(buf, log.version, 0, n_entries)))

    t_legacy = best_of(legacy, repeats)
    t_columnar = best_of(columnar, repeats)
    assert all(n == n_entries for n in sink)
    return {
        "entries": n_entries,
        "legacy_entries_per_sec": n_entries / t_legacy,
        "columnar_entries_per_sec": n_entries / t_columnar,
        "speedup": t_legacy / t_columnar,
        "floor": DECODE_FLOOR,
    }
