"""Measurement cores shared by the standalone benchmark scripts and
the suite ports.

Each module here holds the *measured body* of one gated benchmark —
the frozen legacy baselines, the workload builders, the single-shot
measurement functions.  ``benchmarks/bench_*.py`` (standalone/pytest)
and :mod:`repro.bench.ports` (the ``python -m repro.bench`` suite)
both import from here, so there is exactly one definition of what
each number means.

The legacy baselines (``record_path._LegacyLog`` et al.) are kept
**frozen** on purpose: their slowness is the measurement.  Do not
optimise them when the library moves on.
"""
