"""Monitor-overhead measurement core.

Measures the wall-clock cost a polling :class:`repro.monitor.Monitor`
imposes on a GIL-bound Python workload sharing the interpreter: the
sampler thread wakes every ``interval`` seconds, polls a realistic
sampler set (recorder-shaped counters, kvstore tickers, an ad-hoc
callback source), appends series points and evaluates an alert rule —
while the workload burns CPU under the GIL.
"""

import statistics
import time

from repro.core import PipelineStats
from repro.monitor import (
    AlertRule,
    CallbackSampler,
    KVStoreSampler,
    Monitor,
    PipelineSampler,
)

__all__ = [
    "INTERVAL",
    "OVERHEAD_BUDGET",
    "WORK_LOOPS",
    "build_monitor",
    "make_workload",
    "overhead_sample",
    "timed",
]

INTERVAL = 0.01  # seconds between sampling passes
WORK_LOOPS = 120_000
OVERHEAD_BUDGET = 0.05  # the acceptance criterion: < 5%


def make_workload(loops=WORK_LOOPS):
    """A GIL-bound pure-Python burn, ~tens of milliseconds."""

    def workload():
        acc = 0
        for i in range(loops):
            acc += (i * 2654435761) & 0xFFFF
        return acc

    return workload


class _FakeTickers:
    """kvstore-shaped source: a tickers dict the sampler reads."""

    def __init__(self):
        self.tickers = {f"ticker.{i}": i * 7 for i in range(12)}


def timed(fn, repeats):
    """Median of ``repeats`` timings of ``fn`` (median resists the odd
    scheduler hiccup better than min or mean for this comparison)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def build_monitor(interval=INTERVAL):
    monitor = Monitor(interval=interval)
    monitor.add_rule(
        AlertRule("drops", "pipeline_entries_dropped_total", ">", 1e12)
    )
    monitor.attach(KVStoreSampler(_FakeTickers()))
    monitor.attach(
        PipelineSampler(PipelineStats(entries_ingested=1, counter_span=10))
    )
    state = {"n": 0}

    def poll_source():
        state["n"] += 1
        return {"polls": state["n"], "depth": state["n"] % 7}

    monitor.attach(CallbackSampler("app", poll_source))
    return monitor


def overhead_sample(workload, repeats, interval=INTERVAL):
    """One paired measurement: the workload alone vs under an attached
    monitor.  Returns ``(baseline, monitored, samples, pass_p95)`` —
    the two median timings, the number of sampling passes that
    actually ran, and the p95 wall-clock cost of one pass."""
    baseline = timed(workload, repeats)
    monitor = build_monitor(interval)
    with monitor:
        monitored = timed(workload, repeats)
    samples = int(monitor.registry.value("monitor_samples_total", 0))
    pass_p95 = monitor.registry.get(
        "monitor_sample_duration_seconds"
    ).percentile(95)
    return baseline, monitored, samples, pass_p95
