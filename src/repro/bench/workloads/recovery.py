"""Crash-recovery measurement core: fault matrix, salvage, sealing.

Three measurements, mirroring docs/log-format.md's recovery contract:
the fault matrix (every crash phase × a sweep of crash points; 100%
of CRC-sealed segments must come back), salvage throughput through
:func:`repro.api.recover_log`, and the throughput retained by sealed
recording versus unsealed.
"""

import time

from repro.api import SharedLog, recover_log
from repro.core import KIND_CALL, ThreadLogWriter
from repro.core.log import HEADER_SIZE
from repro.faults import (
    CRASH_PHASES,
    CrashingWriter,
    FaultInjector,
    InjectedCrash,
    crashed_snapshot,
)

from repro.bench.timing import best_of

__all__ = [
    "MATRIX_FLOOR",
    "SEAL_FLOOR",
    "bench_fault_matrix",
    "bench_salvage",
    "bench_seal_overhead",
    "seal_overhead_sample",
    "sealed_image",
]

#: Hard floor: fraction of sealed segments recovered across the whole
#: fault matrix.  This is the paper-level promise — a committed,
#: CRC-verified block survives any crash — so the floor is 1.0.
MATRIX_FLOOR = 1.0

#: Sealed recording must retain at least this fraction of the
#: unsealed batched write throughput (CRC32 per committed block).
SEAL_FLOOR = 0.5


def bench_fault_matrix(block, crash_points):
    """Every phase x every crash point: recovered/sealed must be 1.0."""
    runs = 0
    segments_sealed = segments_recovered = 0
    quarantined_reported = quarantined_counted = 0
    for phase in CRASH_PHASES:
        for crash_flush in range(1, crash_points + 1):
            capacity = block * (crash_points + 2)
            log = SharedLog.create(capacity, sealed=True)
            writer = CrashingWriter(
                log, block=block, phase=phase, crash_flush=crash_flush
            )
            try:
                for i in range(block * (crash_points + 1)):
                    writer.append(KIND_CALL, i, 0x400000, 1)
                writer.flush()
            except InjectedCrash:
                pass
            assert writer.crashed
            _, report = recover_log(crashed_snapshot(log))
            runs += 1
            segments_sealed += report.segments_sealed
            segments_recovered += report.segments_recovered
            quarantined_reported += len(report.quarantined)
            quarantined_counted += report.entries_quarantined
            if report.entries_quarantined != sum(
                q.count for q in report.quarantined
            ):
                raise AssertionError(
                    f"silent drop at phase={phase} flush={crash_flush}"
                )
    return {
        "crash_runs": runs,
        "phases": list(CRASH_PHASES),
        "segments_sealed": segments_sealed,
        "segments_recovered": segments_recovered,
        "recovered_fraction": (
            segments_recovered / segments_sealed if segments_sealed else 1.0
        ),
        "entries_quarantined": quarantined_counted,
        "quarantined_ranges": quarantined_reported,
        "floor": MATRIX_FLOOR,
    }


def sealed_image(n_entries, block):
    """A persisted sealed log image: ``(bytes, entry_size)``."""
    log = SharedLog.create(n_entries, sealed=True)
    with ThreadLogWriter(log, block=block) as writer:
        for i in range(n_entries):
            writer.append(KIND_CALL, i, 0x400000 + i, 1 + i % 4)
    log._store_tail()
    log.seal_remainder()
    return log.to_bytes(), log.entry_size


def bench_salvage(n_entries, block, repeats):
    """MB/s through recover_log for truncated and flipped images."""
    data, entry_size = sealed_image(n_entries, block)
    truncated = data[: HEADER_SIZE + (n_entries * 3 // 4) * entry_size + 5]
    flipped, _ = FaultInjector(7).flip(data, n=8, lo=HEADER_SIZE)

    results = {}
    for name, image in (("truncated", truncated), ("flipped", flipped)):
        sink = []

        def salvage(image=image):
            sink.append(recover_log(image)[1])

        elapsed = best_of(salvage, repeats)
        report = sink[-1]
        results[name] = {
            "image_bytes": len(image),
            "mb_per_sec": len(image) / elapsed / 1e6,
            "entries_salvaged": report.entries_salvaged,
            "entries_quarantined": report.entries_quarantined,
            "crc_failures": report.crc_failures,
            "salvaged_fraction": report.entries_salvaged / n_entries,
        }
    return results


def _write_all(n_events, sealed):
    log = SharedLog.create(n_events, sealed=sealed)
    with ThreadLogWriter(log) as writer:
        append = writer.append
        for i in range(n_events):
            append(KIND_CALL, i, 0x400000, 7)
    log._store_tail()
    if sealed:
        log.seal_remainder()


def seal_overhead_sample(n_events):
    """One paired measurement: unsealed vs sealed batched recording.
    Returns ``(t_plain, t_sealed)``; the retained fraction is
    ``t_plain / t_sealed``."""
    start = time.perf_counter()
    _write_all(n_events, sealed=False)
    t_plain = time.perf_counter() - start
    start = time.perf_counter()
    _write_all(n_events, sealed=True)
    t_sealed = time.perf_counter() - start
    return t_plain, t_sealed


def bench_seal_overhead(n_events, repeats):
    """events/sec, batched writer: sealed vs unsealed recording
    (best-of-``repeats``, the standalone script's point estimate)."""
    t_plain = best_of(lambda: _write_all(n_events, False), repeats)
    t_sealed = best_of(lambda: _write_all(n_events, True), repeats)
    return {
        "events": n_events,
        "unsealed_events_per_sec": n_events / t_plain,
        "sealed_events_per_sec": n_events / t_sealed,
        "retained_fraction": t_plain / t_sealed,
        "floor": SEAL_FLOOR,
    }
