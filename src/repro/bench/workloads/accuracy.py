"""Accuracy measurement core — TEE-Perf vs perf against exact truth.

The simulator gives us what real hardware never does — an *exact*
oracle (the zero-cost ghost trace) — so §II's accuracy claim can be
measured: run one workload with an uneven five-method mix, and
compare each profiler's per-method share of runtime against the
truth.  ``rounds`` scales the workload (the standalone benchmark uses
the paper-ish 120; the suite harness runs fewer — the simulation is
deterministic, so shares do not drift with rounds).
"""

from repro.api import TEEPerf
from repro.core import Instrumenter, symbol
from repro.machine import Machine
from repro.perfsim import PerfSim
from repro.tee import SGX_V1, make_env

__all__ = [
    "ACCURACY_CEILING",
    "MIX",
    "ROUNDS",
    "MixWorkload",
    "max_error",
    "perf_shares",
    "teeperf_shares",
    "truth_shares",
]

# Uneven method mix: (cycles per call, calls per round).
MIX = {
    "mix::Tiny()": (800, 6),
    "mix::Small()": (4_000, 3),
    "mix::Medium()": (22_000, 2),
    "mix::Large()": (130_000, 1),
    "mix::Huge()": (470_000, 1),
}
ROUNDS = 120

#: TEE-Perf must track the exact truth to within 1.5 share points.
ACCURACY_CEILING = 0.015


class MixWorkload:
    def __init__(self, env, rounds=ROUNDS):
        self.env = env
        self.rounds = rounds

    @symbol("mix::Main()")
    def main(self):
        for _ in range(self.rounds):
            for _ in range(MIX["mix::Tiny()"][1]):
                self.tiny()
            for _ in range(MIX["mix::Small()"][1]):
                self.small()
            for _ in range(MIX["mix::Medium()"][1]):
                self.medium()
            self.large()
            self.huge()

    @symbol("mix::Tiny()")
    def tiny(self):
        self.env.compute(MIX["mix::Tiny()"][0])

    @symbol("mix::Small()")
    def small(self):
        self.env.compute(MIX["mix::Small()"][0])

    @symbol("mix::Medium()")
    def medium(self):
        self.env.compute(MIX["mix::Medium()"][0])

    @symbol("mix::Large()")
    def large(self):
        self.env.compute(MIX["mix::Large()"][0])

    @symbol("mix::Huge()")
    def huge(self):
        self.env.compute(MIX["mix::Huge()"][0])


def truth_shares():
    total = sum(cycles * calls for cycles, calls in MIX.values())
    return {
        name: cycles * calls / total for name, (cycles, calls) in MIX.items()
    }


def teeperf_shares(rounds=ROUNDS):
    perf = TEEPerf.simulated(platform=SGX_V1, name="mix")
    app = MixWorkload(perf.env, rounds=rounds)
    perf.compile_instance(app)
    perf.record(app.main)
    analysis = perf.analyze()
    measured = {
        name: analysis.method(name).exclusive for name in MIX
    }
    total = sum(measured.values())
    return {name: value / total for name, value in measured.items()}


def perf_shares(rounds=ROUNDS):
    machine = Machine(cores=8)
    env = make_env(machine, SGX_V1)
    app = MixWorkload(env, rounds=rounds)
    ins = Instrumenter("mix")
    ins.instrument_instance(app)
    program = ins.finish()
    result = PerfSim(env).profile(program, app.main)
    counted = {name: result.samples.get(name, 0) for name in MIX}
    total = sum(counted.values()) or 1
    return {name: value / total for name, value in counted.items()}


def max_error(shares, truth):
    return max(abs(shares[name] - truth[name]) for name in truth)
