"""Fleet-ingest measurement core: throughput and staleness.

Two properties make a continuous-profiling service usable
(Cloudprofiler's framing in PAPERS.md): it must *keep up* — sustained
segment ingest without backlog — and it must be *fresh* — the moment
an ingest ack returns, the segment's ticks are queryable.  Both are
measured against a live :class:`repro.fleet.daemon.FleetDaemon` using
the in-process fast path, so the numbers isolate the service core
(worker handoff, salvage, window fold-in) from socket costs.

The pool is pinned to thread workers here: process pools fall back to
threads on sandboxed hosts anyway, and a benchmark whose backing
executor varies by host would gate two different systems under one
floor.
"""

import time

from repro.bench.workloads import analyzer as _analyzer
from repro.fleet import FleetDaemon

__all__ = [
    "INGEST_FLOOR",
    "STALENESS_BUDGET",
    "build_daemon",
    "build_segments",
    "ingest_sample",
    "staleness_sample",
]

#: Sustained ingest floor, entries/second through analysis into
#: windows.  Set ~10x under the slowest host measured (thread pool,
#: jobs=2) so the gate trips on regressions, not on slow CI metal.
INGEST_FLOOR = 30_000.0

#: Publish-to-queryable ceiling, seconds, for one segment batch with
#: an idle pool.  Measured worst case is milliseconds; the budget
#: leaves room for slow CI metal while still catching anything that
#: decouples ingest acks from window visibility.
STALENESS_BUDGET = 2.0

_TENANTS = ("web", "db")


def build_segments(segments, threads=2, frames_per_thread=1_500):
    """``segments`` packed log images over one shared symtab; returns
    ``(payloads, symtab_json, entries_per_segment)``."""
    image = _analyzer.build_image()
    symtab_json = image.to_json()
    payloads = []
    for i in range(segments):
        log = _analyzer.build_log(
            image, threads=threads,
            frames_per_thread=frames_per_thread + i,  # no two identical
        )
        payloads.append(log.to_bytes())
    entries = threads * frames_per_thread * 2
    return payloads, symtab_json, entries


def build_daemon(jobs=2):
    """A bench-shaped daemon: thread workers (host-independent), short
    windows with shallow retention so repeated samples hit the archive
    compaction path instead of accumulating."""
    daemon = FleetDaemon(
        window_seconds=0.5,
        retention=4,
        max_paths=512,
        jobs=jobs,
        prefer_processes=False,
    )
    daemon.start()
    return daemon


def ingest_sample(daemon, payloads, symtab_json, entries):
    """One throughput measurement: publish every segment across the
    tenants, drain to completion, return entries/second.  The
    no-silent-drop identity is asserted outside the timed region."""
    start = time.perf_counter()
    for i, payload in enumerate(payloads):
        daemon.ingest_segment(
            _TENANTS[i % len(_TENANTS)], symtab_json, payload,
            session=f"bench-{i % 4}",
        )
    daemon.drain()
    elapsed = time.perf_counter() - start
    status = daemon.status()
    assert status["accounted"], status["counters"]
    assert not status["recent_errors"], status["recent_errors"]
    return len(payloads) * entries / elapsed


def staleness_sample(daemon, payloads, symtab_json):
    """One freshness measurement: the worst publish-to-queryable lag
    across a batch — from ``ingest_segment`` to the segment's ticks
    being visible in the tenant's merged profile."""
    worst = 0.0
    for i, payload in enumerate(payloads):
        tenant = _TENANTS[i % len(_TENANTS)]
        before = _tenant_ticks(daemon, tenant)
        start = time.perf_counter()
        daemon.ingest_segment(
            tenant, symtab_json, payload, session=f"stale-{i}"
        )
        daemon.drain()
        lag = time.perf_counter() - start
        assert _tenant_ticks(daemon, tenant) > before
        worst = max(worst, lag)
    return worst


def _tenant_ticks(daemon, tenant):
    try:
        return daemon.profile(tenant).total_exclusive()
    except KeyError:
        return 0
