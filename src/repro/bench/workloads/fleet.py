"""Fleet-ingest measurement core: throughput and staleness.

Two properties make a continuous-profiling service usable
(Cloudprofiler's framing in PAPERS.md): it must *keep up* — sustained
segment ingest without backlog — and it must be *fresh* — the moment
an ingest ack returns, the segment's ticks are queryable.  Both are
measured against a live :class:`repro.fleet.daemon.FleetDaemon` using
the in-process fast path, so the numbers isolate the service core
(worker handoff, salvage, window fold-in) from socket costs.

The pool is pinned to thread workers here: process pools fall back to
threads on sandboxed hosts anyway, and a benchmark whose backing
executor varies by host would gate two different systems under one
floor.
"""

import time

from repro.bench.workloads import analyzer as _analyzer
from repro.fleet import DictWindowSummary, FleetDaemon, WindowStore

__all__ = [
    "INGEST_FLOOR",
    "QUERY_COLD_FLOOR",
    "QUERY_WARM_FLOOR",
    "STALENESS_BUDGET",
    "build_daemon",
    "build_query_store",
    "build_query_windows",
    "build_segments",
    "dict_merged_baseline",
    "ingest_sample",
    "query_sample",
    "staleness_sample",
]

#: Sustained ingest floor, entries/second through analysis into
#: windows.  Set ~10x under the slowest host measured (thread pool,
#: jobs=2) so the gate trips on regressions, not on slow CI metal.
INGEST_FLOOR = 30_000.0

#: Publish-to-queryable ceiling, seconds, for one segment batch with
#: an idle pool.  Measured worst case is milliseconds; the budget
#: leaves room for slow CI metal while still catching anything that
#: decouples ingest acks from window visibility.
STALENESS_BUDGET = 2.0

_TENANTS = ("web", "db")


def build_segments(segments, threads=2, frames_per_thread=1_500):
    """``segments`` packed log images over one shared symtab; returns
    ``(payloads, symtab_json, entries_per_segment)``."""
    image = _analyzer.build_image()
    symtab_json = image.to_json()
    payloads = []
    for i in range(segments):
        log = _analyzer.build_log(
            image, threads=threads,
            frames_per_thread=frames_per_thread + i,  # no two identical
        )
        payloads.append(log.to_bytes())
    entries = threads * frames_per_thread * 2
    return payloads, symtab_json, entries


def build_daemon(jobs=2):
    """A bench-shaped daemon: thread workers (host-independent), short
    windows with shallow retention so repeated samples hit the archive
    compaction path instead of accumulating."""
    daemon = FleetDaemon(
        window_seconds=0.5,
        retention=4,
        max_paths=512,
        jobs=jobs,
        prefer_processes=False,
    )
    daemon.start()
    return daemon


def ingest_sample(daemon, payloads, symtab_json, entries):
    """One throughput measurement: publish every segment across the
    tenants, drain to completion, return entries/second.  The
    no-silent-drop identity is asserted outside the timed region."""
    start = time.perf_counter()
    for i, payload in enumerate(payloads):
        daemon.ingest_segment(
            _TENANTS[i % len(_TENANTS)], symtab_json, payload,
            session=f"bench-{i % 4}",
        )
    daemon.drain()
    elapsed = time.perf_counter() - start
    status = daemon.status()
    assert status["accounted"], status["counters"]
    assert not status["recent_errors"], status["recent_errors"]
    return len(payloads) * entries / elapsed


def staleness_sample(daemon, payloads, symtab_json):
    """One freshness measurement: the worst publish-to-queryable lag
    across a batch — from ``ingest_segment`` to the segment's ticks
    being visible in the tenant's merged profile."""
    worst = 0.0
    for i, payload in enumerate(payloads):
        tenant = _TENANTS[i % len(_TENANTS)]
        before = _tenant_ticks(daemon, tenant)
        start = time.perf_counter()
        daemon.ingest_segment(
            tenant, symtab_json, payload, session=f"stale-{i}"
        )
        daemon.drain()
        lag = time.perf_counter() - start
        assert _tenant_ticks(daemon, tenant) > before
        worst = max(worst, lag)
    return worst


def _tenant_ticks(daemon, tenant):
    try:
        return daemon.profile(tenant).total_exclusive()
    except KeyError:
        return 0


# ----------------------------------------------------------------------
# Query path: cached merged profiles vs the frozen dict merge loop.

#: Warm-cache merged-profile speedup floor vs the dict merge loop — a
#: repeat query between ingests is a generation check plus a cache
#: return, so it must beat re-merging retention x paths by an order of
#: magnitude.
QUERY_WARM_FLOOR = 10.0

#: Cold (flushed-cache) merged-profile speedup floor: even a full
#: rebuild is one array add per retained window instead of a
#: tuple-keyed dict loop per path.
QUERY_COLD_FLOOR = 3.0


def build_query_windows(windows=64, paths=10_000, depth=4, ticks=1_000):
    """``windows`` synthetic folded dicts over ``paths`` distinct call
    paths (one shared prefix tree: path *i*'s frames are the base-N
    digits of *i*, so prefixes intern heavily, like real stacks).
    Ticks are deterministic but vary per window and per path."""
    fanout = max(2, round(paths ** (1.0 / depth)))
    all_paths = []
    for i in range(paths):
        frames, key = [], i
        for level in range(depth):
            frames.append(f"m{level}_{key % fanout}")
            key //= fanout
        all_paths.append(tuple(frames))
    out = []
    for w in range(windows):
        folded = {
            path: (i * 7919 + w * 104729) % ticks + 1
            for i, path in enumerate(all_paths)
        }
        calls = {path[-1]: (i + w) % 97 + 1
                 for i, path in enumerate(all_paths)}
        out.append((folded, calls))
    return out


def build_query_store(window_data, tenant="web"):
    """The contender: a :class:`WindowStore` holding every window live
    (retention covers them all, ``max_paths`` high enough that nothing
    compacts — the bench measures merging, not compaction)."""
    paths = len(window_data[0][0])
    store = WindowStore(
        window_seconds=60.0,
        retention=len(window_data),
        max_paths=2 * paths + 1,
    )
    for i, (folded, calls) in enumerate(window_data):
        entries = sum(folded.values())
        store.add(
            tenant, folded, calls, session=f"bench-{i}",
            entries=entries, salvaged=entries, ts=60.0 * i,
        )
    return store


def dict_merged_baseline(window_data):
    """The frozen pre-interning query path, verbatim: one
    :class:`DictWindowSummary` per window, merged pairwise into the
    answer — exactly what ``merged()`` did before the path table."""
    merged = DictWindowSummary("merged")
    for i, (folded, calls) in enumerate(window_data):
        summary = DictWindowSummary(i, dict(folded), dict(calls))
        summary.segments = 1
        merged.merge(summary)
    return merged


def query_sample(store, window_data, tenant="web", warm_queries=32):
    """One paired measurement: the dict merge loop vs the cold
    (flushed-cache) query vs the warm repeat query.  Returns
    ``(t_dict, t_cold, t_warm)`` seconds; correctness (identical
    folded output) is asserted by the bench setup, outside the timed
    region."""
    start = time.perf_counter()
    dict_merged_baseline(window_data)
    t_dict = time.perf_counter() - start

    store.flush_cache(tenant)
    start = time.perf_counter()
    cold = store.merged(tenant)
    t_cold = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(warm_queries):
        warm = store.merged(tenant)
    t_warm = (time.perf_counter() - start) / warm_queries
    assert warm is cold  # every repeat was a pure cache hit
    return t_dict, t_cold, t_warm
