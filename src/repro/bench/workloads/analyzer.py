"""Analyzer-scaling measurement core: the engine × jobs matrix.

Builds the clean multi-thread log the scaling benchmark measures and
times reconstruction engines against each other.  Sizes are
parameters so the standalone script keeps its paper-sized 512k-entry
log while the suite harness runs a smaller one per repetition.
"""

import time

from repro.api import Analyzer, SharedLog
from repro.core import KIND_CALL, KIND_RET, LogStream
from repro.symbols import BinaryImage

from repro.bench.timing import best_of

__all__ = [
    "VECTOR_FLOOR",
    "POOL_FLOOR",
    "POOL_MIN_CPUS",
    "build_image",
    "build_log",
    "run_matrix",
    "vector_speedup_sample",
]

#: acceptance floors (ISSUE 4): vectorised reconstruction >= 4x the
#: sequential loop single-threaded; the process pool >= 1.8x from
#: jobs=1 to jobs=4 (enforced on hosts with >= POOL_MIN_CPUS cores).
VECTOR_FLOOR = 4.0
POOL_FLOOR = 1.8
POOL_MIN_CPUS = 4

#: Paper-sized defaults (the standalone script's log: 8 * 32k * 2 =
#: 512k entries over 48 functions).
THREADS = 8
FRAMES_PER_THREAD = 32_000
FUNCTIONS = 48


def build_image(functions=FUNCTIONS):
    image = BinaryImage("scaling")
    for i in range(functions):
        image.add_function(f"app::Fn{i:02d}()", size=64)
    return image


def build_log(image, threads=THREADS, frames_per_thread=FRAMES_PER_THREAD):
    """A clean log: nested call trees on every thread (entries =
    ``threads * frames_per_thread * 2``)."""
    functions = len(list(image.symtab))
    addrs = [sym.addr for sym in image.symtab]
    log = SharedLog.create(
        threads * frames_per_thread * 2,
        profiler_addr=image.profiler_addr,
    )
    append = log.append
    for tid in range(threads):
        counter = tid  # desynchronise threads a little
        stack = []
        opened = 0
        while opened < frames_per_thread or stack:
            counter += 3
            # Deterministic open/close pattern: grow to depth 6, drain.
            if opened < frames_per_thread and len(stack) < 6:
                addr = addrs[(opened * 7 + tid) % functions]
                stack.append(addr)
                append(KIND_CALL, counter, addr, tid)
                opened += 1
            else:
                append(KIND_RET, counter, stack.pop(), tid)
    return log


def vector_speedup_sample(analyzer, log):
    """One paired measurement: sequential ``python`` engine vs the
    ``vector`` kernel, both single-worker, returning
    ``(t_python, t_vector, analyses)``.  The caller asserts the two
    analyses agree — correctness stays outside the timed region."""
    start = time.perf_counter()
    sequential = analyzer.analyze(log, engine="python")
    t_python = time.perf_counter() - start
    start = time.perf_counter()
    vector = analyzer.analyze(log, engine="vector")
    t_vector = time.perf_counter() - start
    return t_python, t_vector, (sequential, vector)


def run_matrix(analyzer, log, stream_path, repeats):
    """One row per (engine, jobs) cell: ``(name, analysis, seconds)``.

    ``best_of`` keeps the result of the *last* call per cell; all
    calls are equivalent by the differential guarantee the caller
    asserts."""

    def timed_cell(fn):
        result = []

        def body():
            result.append(fn())

        elapsed = best_of(body, repeats)
        return result[-1], elapsed

    cells = []
    cells.append(
        ("python j=1", *timed_cell(
            lambda: analyzer.analyze(log, engine="python")
        ))
    )
    cells.append(
        ("vector j=1", *timed_cell(
            lambda: analyzer.analyze(log, engine="vector")
        ))
    )
    cells.append(
        ("python j=4 (pool)", *timed_cell(
            lambda: analyzer.analyze(log, engine="python", jobs=4)
        ))
    )
    cells.append(
        ("vector j=4", *timed_cell(
            lambda: analyzer.analyze(log, engine="vector", jobs=4)
        ))
    )
    if stream_path is not None:
        cells.append(
            ("vector j=4 (mmap)", *timed_cell(
                lambda: analyzer.analyze(
                    LogStream.open(str(stream_path)), engine="vector",
                    jobs=4,
                )
            ))
        )
    return cells


def make_analyzer(image):
    return Analyzer(image)
