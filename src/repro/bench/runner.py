"""``python -m repro.bench`` — run the suite, gate it, report it.

The single entry point the bench-suite CI job, the README quickstart
and the tier-1 integration test all share:

* run the registered benchmarks (``--quick`` for CI sizing, ``--only``
  to pick), collecting repetition samples through the harness;
* write the consolidated ``benchmarks/out/BENCH_suite.json`` plus the
  legacy per-bench artifacts as derived views;
* evaluate every gate (floors/ceilings always; baseline CI-overlap
  when ``--baseline`` points at a previous suite file) and exit
  non-zero when any gate fails;
* ``--report`` renders the markdown table the README embeds, straight
  from an existing suite file — the table is generated, never
  hand-edited.
"""

import argparse
import json
import pathlib
import sys

from repro.bench.harness import HarnessConfig, run_benchmark
from repro.bench.ports import build_registry, derived_views
from repro.bench.suite import (
    baseline_gate_for,
    default_out_dir,
    load_suite,
    write_suite,
)

__all__ = ["build_parser", "main", "markdown_report", "print_result",
           "run_selected"]

QUICK_REPETITIONS = 3
FULL_REPETITIONS = 7


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Statistically rigorous benchmark suite: warmup "
            "detection, repetitions, confidence intervals, "
            "distribution-aware regression gates, one consolidated "
            "BENCH_suite.json (see docs/benchmarking.md)"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: smaller workloads, 3 repetitions",
    )
    parser.add_argument(
        "--only", action="append", metavar="NAME",
        help="run only this benchmark (repeatable)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list registered benchmarks and exit",
    )
    parser.add_argument(
        "--repetitions", type=int, metavar="N",
        help="override the repetition count (default: 7, 3 with --quick)",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="suite file to write (default: benchmarks/out/BENCH_suite.json)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help=(
            "previous BENCH_suite.json to gate against: a benchmark "
            "fails when its CI is disjoint from the baseline's in the "
            "regressing direction"
        ),
    )
    parser.add_argument(
        "--handicap", action="append", metavar="NAME=FACTOR",
        help=(
            "multiply NAME's samples by FACTOR — the documented "
            "self-test that a doctored result flips its gate to fail "
            "(e.g. --handicap record_write=0.5)"
        ),
    )
    parser.add_argument(
        "--report", action="store_true",
        help=(
            "render the markdown table from an existing suite file "
            "(with --out to pick the file) instead of running"
        ),
    )
    return parser


def _parse_handicaps(specs, names):
    handicaps = {}
    for spec in specs or ():
        name, sep, factor = spec.partition("=")
        if not sep:
            raise SystemExit(f"bad --handicap (want NAME=FACTOR): {spec}")
        if name not in names:
            raise SystemExit(f"--handicap names unknown benchmark: {name}")
        handicaps[name] = float(factor)
    return handicaps


def _format_value(value, unit):
    if unit == "x":
        return f"{value:.2f}x"
    if unit in ("fraction", "share"):
        return f"{value * 100:.2f}%"
    return f"{value:g}"


def markdown_report(payload):
    """The README's performance table, generated from a suite file."""
    lines = [
        "| benchmark | metric | median | 95% CI | n | gate |",
        "|---|---|---|---|---|---|",
    ]
    for name, bench in sorted(payload["benchmarks"].items()):
        stats = bench["stats"]
        unit = bench["unit"]
        gates = bench["gates"]
        gate_text = "; ".join(g["gate"] for g in gates) or "—"
        verdict = "pass" if bench["passed"] else "**FAIL**"
        lines.append(
            "| `{name}` | {desc} | **{median}** | [{lo}, {hi}] | {n} "
            "| {gate} ({verdict}) |".format(
                name=name,
                desc=bench["description"],
                median=_format_value(stats["median"], unit),
                lo=_format_value(stats["ci_low"], unit),
                hi=_format_value(stats["ci_high"], unit),
                n=stats["count"],
                gate=gate_text,
                verdict=verdict,
            )
        )
    return "\n".join(lines)


def print_result(result):
    stats = result.stats
    print(
        f"{result.name:<18} median {_format_value(stats.median, result.unit):>9}"
        f"  CI [{_format_value(stats.ci_low, result.unit)}, "
        f"{_format_value(stats.ci_high, result.unit)}]"
        f"  n={stats.count}"
        f"  mad={stats.mad:.3g}"
        f"  {'ok' if result.passed else 'GATE FAILED'}"
        f"  ({result.seconds:.1f}s"
        + (f", handicap {result.handicap:g}" if result.handicap != 1.0
           else "")
        + ")"
    )
    for verdict in result.verdicts:
        if not verdict.passed:
            print(f"  FAIL [{verdict.kind}] {verdict.reason}",
                  file=sys.stderr)


def run_selected(names, quick=False, repetitions=None):
    """Run a subset of the registry through the harness.

    The code path the standalone ``benchmarks/bench_*.py`` wrappers
    share with ``python -m repro.bench``: same sizes, same warmup and
    repetition orchestration, same gates.  Returns ``{name:
    BenchResult}`` in registry order, printing the one-line summary
    per benchmark as it goes.
    """
    registry = [b for b in build_registry(quick=quick) if b.name in names]
    missing = sorted(set(names) - {b.name for b in registry})
    if missing:
        raise SystemExit(f"unknown benchmark(s): {', '.join(missing)}")
    config = HarnessConfig(
        repetitions=repetitions
        or (QUICK_REPETITIONS if quick else FULL_REPETITIONS)
    )
    results = {}
    for bench in registry:
        result = run_benchmark(bench, config)
        print_result(result)
        results[bench.name] = result
    return results


def main(argv=None):
    args = build_parser().parse_args(argv)
    out_path = args.out or (default_out_dir() / "BENCH_suite.json")

    if args.report:
        print(markdown_report(load_suite(out_path)))
        return 0

    registry = build_registry(quick=args.quick)
    names = [b.name for b in registry]
    if args.list:
        for bench in registry:
            print(f"{bench.name:<18} {bench.description}")
        return 0

    if args.only:
        unknown = sorted(set(args.only) - set(names))
        if unknown:
            raise SystemExit(f"unknown benchmark(s): {', '.join(unknown)}")
        registry = [b for b in registry if b.name in args.only]

    handicaps = _parse_handicaps(args.handicap, set(names))
    repetitions = args.repetitions or (
        QUICK_REPETITIONS if args.quick else FULL_REPETITIONS
    )
    if repetitions < 3:
        raise SystemExit("the suite needs >= 3 repetitions for a CI")
    config = HarnessConfig(repetitions=repetitions)

    baseline = load_suite(args.baseline) if args.baseline else None

    results = []
    for bench in registry:
        result = run_benchmark(
            bench, config, handicap=handicaps.get(bench.name, 1.0)
        )
        if baseline is not None:
            gate = baseline_gate_for(baseline, bench.name)
            if gate is not None:
                result.verdicts.append(
                    gate.evaluate(result.stats, result.samples,
                                  bench.direction)
                )
        print_result(result)
        results.append(result)

    payload = write_suite(
        results, out_path, quick=args.quick,
        baseline=str(args.baseline) if args.baseline else None,
    )
    out_dir = pathlib.Path(out_path).parent
    for filename, view in derived_views(
        {r.name: r for r in results}, quick=args.quick
    ).items():
        (out_dir / filename).write_text(json.dumps(view, indent=2) + "\n")
    print(f"wrote {out_path} ({len(results)} benchmarks)")

    if not payload["passed"]:
        failed = [r.name for r in results if not r.passed]
        print("GATE FAILED: " + ", ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
