"""Robust statistics for benchmark samples.

The MooBench/Cloudprofiler lesson: a benchmark result is a
*distribution*, not a number.  This module turns a list of samples
into a :class:`SampleStats` — median, MAD, mean/stdev, a confidence
interval for the median (bootstrap by default, Student-t on request)
and outlier tags — with two hard guarantees:

* **permutation invariance** — the statistics of a sample list depend
  only on its multiset of values, never on their order (samples are
  sorted before any resampling, and the bootstrap RNG is seeded), so
  re-ordering repetitions can never change a gate verdict;
* **degenerate safety** — one sample, or all-equal samples, produce a
  zero-width interval tagged ``ci_method="degenerate"`` instead of a
  crash or a NaN (simulated benchmarks are deterministic and hit this
  constantly).
"""

import math
from dataclasses import dataclass, field

try:  # numpy is the repo's only runtime dependency, but stay graceful
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "SampleStats",
    "bootstrap_ci",
    "mad",
    "median",
    "outlier_values",
    "summarize",
    "t_ci",
]

#: Modified z-score above which a sample is tagged as an outlier
#: (Iglewicz & Hoaglin's recommended cut).
OUTLIER_Z = 3.5

#: Consistency constant making MAD comparable to a normal stdev.
MAD_SCALE = 1.4826

# Two-sided Student-t critical values, df 1..30 (then the normal
# quantile is close enough).  scipy is not available offline.
_T_95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
]
_T_99 = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
    3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
    2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
    2.763, 2.756, 2.750,
]


def _sorted(samples):
    xs = sorted(float(x) for x in samples)
    if not xs:
        raise ValueError("no samples")
    return xs


def median(samples):
    xs = _sorted(samples)
    n = len(xs)
    mid = n // 2
    if n % 2:
        return xs[mid]
    return (xs[mid - 1] + xs[mid]) / 2.0


def mad(samples, scale=1.0):
    """Median absolute deviation (``scale=MAD_SCALE`` to make it a
    robust stdev estimate)."""
    med = median(samples)
    return scale * median([abs(x - med) for x in samples])


def outlier_values(samples, cut=OUTLIER_Z):
    """Samples whose modified z-score exceeds ``cut``, as a sorted list
    of *values* (values, not indices — indices would not be
    permutation-invariant).

    When the MAD is zero (at least half the samples identical) any
    sample different from the median is an outlier by this definition.
    """
    med = median(samples)
    spread = mad(samples, scale=MAD_SCALE)
    if spread == 0.0:
        return sorted(float(x) for x in samples if float(x) != med)
    return sorted(
        float(x) for x in samples if abs(float(x) - med) / spread > cut
    )


def _quantile(xs, q):
    """Linear-interpolation quantile of a *sorted* list."""
    n = len(xs)
    if n == 1:
        return xs[0]
    pos = q * (n - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def bootstrap_ci(samples, level=0.95, resamples=2000, seed=0):
    """Percentile-bootstrap confidence interval for the **median**.

    Returns ``(lo, hi, method)``.  Samples are sorted before
    resampling and the RNG is seeded, so the interval is a pure
    function of the sample multiset.  Degenerate inputs (n == 1 or all
    samples equal) return a zero-width interval tagged
    ``"degenerate"``.
    """
    xs = _sorted(samples)
    n = len(xs)
    if n == 1 or xs[0] == xs[-1]:
        return xs[0], xs[-1], "degenerate"
    alpha = (1.0 - level) / 2.0
    if _np is not None:
        arr = _np.asarray(xs, dtype=float)
        rng = _np.random.default_rng(seed)
        idx = rng.integers(0, n, size=(resamples, n))
        meds = _np.median(arr[idx], axis=1)
        lo, hi = _np.quantile(meds, [alpha, 1.0 - alpha])
        return float(lo), float(hi), "bootstrap"
    import random  # pragma: no cover - exercised only without numpy

    rng = random.Random(seed)
    meds = sorted(
        median([xs[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    return _quantile(meds, alpha), _quantile(meds, 1.0 - alpha), "bootstrap"


def t_ci(samples, level=0.95):
    """Student-t confidence interval for the **mean**; ``(lo, hi,
    method)``.  Only the 95%/99% levels carry exact critical values
    (no scipy offline); other levels fall back to the normal 1.96/2.58
    approximation beyond df 30."""
    xs = _sorted(samples)
    n = len(xs)
    if n == 1 or xs[0] == xs[-1]:
        return xs[0], xs[-1], "degenerate"
    mean = sum(xs) / n
    var = sum((x - mean) ** 2 for x in xs) / (n - 1)
    table = _T_99 if level >= 0.99 else _T_95
    df = n - 1
    crit = table[df - 1] if df <= len(table) else (
        2.576 if level >= 0.99 else 1.960
    )
    half = crit * math.sqrt(var / n)
    return mean - half, mean + half, "t"


@dataclass(frozen=True)
class SampleStats:
    """Order-independent summary of one benchmark's samples."""

    count: int
    mean: float
    median: float
    stdev: float
    mad: float
    min: float
    max: float
    ci_low: float
    ci_high: float
    ci_level: float
    ci_method: str
    outliers: tuple = field(default_factory=tuple)

    def to_dict(self):
        data = {k: getattr(self, k) for k in (
            "count", "mean", "median", "stdev", "mad", "min", "max",
            "ci_low", "ci_high", "ci_level", "ci_method",
        )}
        data["outliers"] = list(self.outliers)
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(
            count=int(data["count"]),
            mean=float(data["mean"]),
            median=float(data["median"]),
            stdev=float(data["stdev"]),
            mad=float(data["mad"]),
            min=float(data["min"]),
            max=float(data["max"]),
            ci_low=float(data["ci_low"]),
            ci_high=float(data["ci_high"]),
            ci_level=float(data.get("ci_level", 0.95)),
            ci_method=str(data.get("ci_method", "bootstrap")),
            outliers=tuple(data.get("outliers", ())),
        )


def summarize(samples, level=0.95, method="bootstrap", resamples=2000,
              seed=0):
    """Full :class:`SampleStats` for a sample list.

    ``method`` picks the interval: ``"bootstrap"`` (median CI, the
    default — makes no normality assumption) or ``"t"`` (mean CI).
    """
    xs = _sorted(samples)
    n = len(xs)
    mean = sum(xs) / n
    stdev = (
        math.sqrt(sum((x - mean) ** 2 for x in xs) / (n - 1))
        if n > 1 else 0.0
    )
    if method == "t":
        lo, hi, how = t_ci(xs, level)
    elif method == "bootstrap":
        lo, hi, how = bootstrap_ci(xs, level, resamples=resamples,
                                   seed=seed)
    else:
        raise ValueError(f"unknown CI method: {method!r}")
    return SampleStats(
        count=n,
        mean=mean,
        median=median(xs),
        stdev=stdev,
        mad=mad(xs, scale=MAD_SCALE),
        min=xs[0],
        max=xs[-1],
        ci_low=lo,
        ci_high=hi,
        ci_level=level,
        ci_method=how,
        outliers=tuple(outlier_values(xs)),
    )
