"""Distribution-aware regression gates.

The pre-harness benchmarks compared a single run against a point
floor: one scheduler hiccup on a loaded CI host and the build is red
(or worse — a real regression hides inside the noise and the build is
green).  A gate here compares *intervals*:

* :class:`FloorGate` / :class:`CeilingGate` in ``mode="ci"`` fail only
  when the **entire** confidence interval sits on the wrong side of
  the threshold by more than ``slack`` (default 5%) — i.e. when the
  regression is statistically confident *and* larger than the
  cross-host noise the thresholds were calibrated against.  A median
  on the wrong side with a straddling interval passes, with the
  ambiguity recorded in the verdict reason.
* ``mode="exact"`` is for correctness-style invariants ("100% of
  sealed segments recover") where a single bad sample *is* the
  failure: every sample must satisfy the threshold.
* :class:`BaselineGate` compares the current interval against a stored
  baseline interval (from a previous ``BENCH_suite.json``): it fails
  only when the intervals are disjoint in the regressing direction
  *and* the medians differ by more than a relative tolerance — CI
  overlap, not point floors.

Every gate returns a :class:`GateVerdict` that serialises into the
suite file, so a red build always says *why* in numbers.
"""

from dataclasses import dataclass, field

__all__ = [
    "BaselineGate",
    "CeilingGate",
    "FloorGate",
    "Gate",
    "GateVerdict",
]


@dataclass(frozen=True)
class GateVerdict:
    """The outcome of one gate evaluation, suite-serialisable."""

    gate: str           # gate name, e.g. "floor>=3.0x"
    kind: str           # "floor" | "ceiling" | "baseline"
    passed: bool
    reason: str         # human explanation with the numbers inline
    observed: dict = field(default_factory=dict)

    def to_dict(self):
        return {
            "gate": self.gate,
            "kind": self.kind,
            "passed": self.passed,
            "reason": self.reason,
            "observed": dict(self.observed),
        }


class Gate:
    """Base interface: ``evaluate(stats, samples, direction)``.

    ``direction`` is the benchmark's metric direction — ``"higher"``
    (throughput, speedup) or ``"lower"`` (overhead, error).
    """

    def evaluate(self, stats, samples, direction):
        raise NotImplementedError


class FloorGate(Gate):
    """The metric must stay at or above ``threshold``.

    ``mode="ci"`` (default): fail only when the whole interval is
    below ``threshold * (1 - slack)`` — the floors were calibrated on
    particular hosts, so a confident shortfall *within* the cross-host
    noise margin is reported in the reason but does not fail the
    build.  ``mode="exact"``: fail when *any* sample is below the
    floor, with no slack (correctness invariants).
    """

    kind = "floor"

    def __init__(self, threshold, mode="ci", name=None, slack=0.05):
        if mode not in ("ci", "exact"):
            raise ValueError(f"unknown gate mode: {mode!r}")
        self.threshold = float(threshold)
        self.mode = mode
        self.slack = float(slack)
        self.name = name or f"floor>={threshold:g}"

    def evaluate(self, stats, samples, direction):
        t = self.threshold
        observed = {
            "threshold": t, "mode": self.mode, "slack": self.slack,
            "median": stats.median, "ci_low": stats.ci_low,
            "ci_high": stats.ci_high, "min": stats.min,
        }
        if self.mode == "exact":
            passed = stats.min >= t
            reason = (
                f"min sample {stats.min:g} "
                f"{'>=' if passed else '<'} floor {t:g} (exact)"
            )
        else:
            cutoff = t * (1.0 - self.slack)
            passed = stats.ci_high >= cutoff
            if not passed:
                reason = (
                    f"entire {stats.ci_level:.0%} CI "
                    f"[{stats.ci_low:g}, {stats.ci_high:g}] below "
                    f"floor {t:g} by more than the {self.slack:.0%} "
                    "noise margin: confident regression"
                )
            elif stats.ci_high < t:
                reason = (
                    f"CI [{stats.ci_low:g}, {stats.ci_high:g}] below "
                    f"floor {t:g} but within the {self.slack:.0%} "
                    "noise margin: host-calibration shortfall, not a "
                    "regression"
                )
            elif stats.median < t:
                reason = (
                    f"median {stats.median:g} below floor {t:g} but CI "
                    f"[{stats.ci_low:g}, {stats.ci_high:g}] straddles "
                    "it: not a confident regression"
                )
            else:
                reason = (
                    f"median {stats.median:g} >= floor {t:g} "
                    f"(CI [{stats.ci_low:g}, {stats.ci_high:g}])"
                )
        return GateVerdict(self.name, self.kind, passed, reason, observed)


class CeilingGate(Gate):
    """The metric must stay at or below ``threshold`` (budgets:
    overhead fractions, error bounds).  Mirror of :class:`FloorGate`:
    ``mode="ci"`` fails only when ``ci_low > threshold * (1 + slack)``;
    ``mode="exact"`` fails when any sample exceeds the ceiling, with
    no slack."""

    kind = "ceiling"

    def __init__(self, threshold, mode="ci", name=None, slack=0.05):
        if mode not in ("ci", "exact"):
            raise ValueError(f"unknown gate mode: {mode!r}")
        self.threshold = float(threshold)
        self.mode = mode
        self.slack = float(slack)
        self.name = name or f"ceiling<={threshold:g}"

    def evaluate(self, stats, samples, direction):
        t = self.threshold
        observed = {
            "threshold": t, "mode": self.mode, "slack": self.slack,
            "median": stats.median, "ci_low": stats.ci_low,
            "ci_high": stats.ci_high, "max": stats.max,
        }
        if self.mode == "exact":
            passed = stats.max <= t
            reason = (
                f"max sample {stats.max:g} "
                f"{'<=' if passed else '>'} ceiling {t:g} (exact)"
            )
        else:
            cutoff = t * (1.0 + self.slack)
            passed = stats.ci_low <= cutoff
            if not passed:
                reason = (
                    f"entire {stats.ci_level:.0%} CI "
                    f"[{stats.ci_low:g}, {stats.ci_high:g}] above "
                    f"ceiling {t:g} by more than the {self.slack:.0%} "
                    "noise margin: confident regression"
                )
            elif stats.ci_low > t:
                reason = (
                    f"CI [{stats.ci_low:g}, {stats.ci_high:g}] above "
                    f"ceiling {t:g} but within the {self.slack:.0%} "
                    "noise margin: host-calibration overshoot, not a "
                    "regression"
                )
            elif stats.median > t:
                reason = (
                    f"median {stats.median:g} above ceiling {t:g} but "
                    f"CI [{stats.ci_low:g}, {stats.ci_high:g}] "
                    "straddles it: not a confident regression"
                )
            else:
                reason = (
                    f"median {stats.median:g} <= ceiling {t:g} "
                    f"(CI [{stats.ci_low:g}, {stats.ci_high:g}])"
                )
        return GateVerdict(self.name, self.kind, passed, reason, observed)


class BaselineGate(Gate):
    """Regression check against a stored baseline distribution.

    ``baseline`` is the ``stats`` dict of the same benchmark from a
    previous suite file.  The gate fails only when **both** hold in
    the regressing direction (per the benchmark's ``direction``):

    * the current and baseline confidence intervals are disjoint, and
    * the current median moved by more than ``rel_tol`` relative to
      the baseline median.

    Overlapping intervals always pass: the two distributions are
    statistically indistinguishable at the stored level.
    """

    kind = "baseline"

    def __init__(self, baseline, rel_tol=0.10, name="baseline"):
        self.baseline = dict(baseline)
        self.rel_tol = float(rel_tol)
        self.name = name

    def evaluate(self, stats, samples, direction):
        base_lo = float(self.baseline["ci_low"])
        base_hi = float(self.baseline["ci_high"])
        base_med = float(self.baseline["median"])
        observed = {
            "median": stats.median, "ci_low": stats.ci_low,
            "ci_high": stats.ci_high, "baseline_median": base_med,
            "baseline_ci_low": base_lo, "baseline_ci_high": base_hi,
            "rel_tol": self.rel_tol, "direction": direction,
        }
        if direction == "higher":
            disjoint = stats.ci_high < base_lo
            moved = (
                base_med > 0
                and stats.median < base_med * (1.0 - self.rel_tol)
            )
        else:
            disjoint = stats.ci_low > base_hi
            moved = (
                base_med > 0
                and stats.median > base_med * (1.0 + self.rel_tol)
            ) or (base_med == 0 and stats.ci_low > 0)
        passed = not (disjoint and moved)
        if passed and not disjoint:
            reason = (
                f"CI [{stats.ci_low:g}, {stats.ci_high:g}] overlaps "
                f"baseline CI [{base_lo:g}, {base_hi:g}]"
            )
        elif passed:
            reason = (
                f"CIs disjoint but median {stats.median:g} within "
                f"{self.rel_tol:.0%} of baseline {base_med:g}"
            )
        else:
            reason = (
                f"CI [{stats.ci_low:g}, {stats.ci_high:g}] disjoint "
                f"from baseline [{base_lo:g}, {base_hi:g}] and median "
                f"{stats.median:g} regressed past {self.rel_tol:.0%} "
                f"of baseline {base_med:g}"
            )
        return GateVerdict(self.name, self.kind, passed, reason, observed)
