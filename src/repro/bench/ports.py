"""The suite registry: the gated benchmarks, ported onto the harness.

Each entry wraps the exact measurement core its standalone script uses
(:mod:`repro.bench.workloads`) in a :class:`~repro.bench.harness.
Benchmark`: a body producing one *sample* per call (a speedup ratio,
an overhead fraction, a recovered fraction, a share error) plus the
distribution-aware gate that replaces the script's point floor.

Three size profiles:

* **full** — paper-sized workloads (the numbers the README quotes);
* **quick** (``--quick``) — CI-sized, same floors, smaller bodies;
* **smoke** (``REPRO_BENCH_SMOKE=1``) — tiny bodies for the tier-1
  integration test, where the *machinery* is under test, not the
  hardware.

Paired measurement everywhere: each sample times baseline and
contender back to back in one body call, so host noise cancels in the
ratio — the ratio's distribution is what the gates judge.
"""

import os
import time as _time

from repro.bench.gates import CeilingGate, FloorGate
from repro.bench.harness import Benchmark
from repro.bench.stats import median
from repro.bench.workloads import accuracy as _accuracy
from repro.bench.workloads import analyzer as _analyzer
from repro.bench.workloads import fleet as _fleet
from repro.bench.workloads import monitor as _monitor
from repro.bench.workloads import record_path as _record
from repro.bench.workloads import recovery as _recovery

__all__ = ["build_registry", "derived_views", "smoke_mode"]


def smoke_mode():
    """Tiny-workload mode for integration tests (env, not a flag: the
    CLI surface documents only what users should run)."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _profile(quick, smoke):
    """Size table: (full, quick, smoke) per knob."""
    pick = 2 if smoke else (1 if quick else 0)

    def size(*options):
        return options[pick]

    return size


# ----------------------------------------------------------------------
# record path


def _record_write_bench(size):
    n_events = size(200_000, 100_000, 40_000)
    inner = size(3, 3, 2)
    state = {"pairs": []}

    def body(_):
        pair = _record.write_sample(n_events, inner=inner)
        state["pairs"].append(pair)
        return pair[0] / pair[1]  # legacy / batched = speedup

    def detail(_):
        t_legacy = median([p[0] for p in state["pairs"]])
        t_batched = median([p[1] for p in state["pairs"]])
        return {
            "events": n_events,
            "legacy_events_per_sec": n_events / t_legacy,
            "batched_events_per_sec": n_events / t_batched,
            "legacy_ns_per_event": t_legacy / n_events * 1e9,
            "batched_ns_per_event": t_batched / n_events * 1e9,
            "floor": _record.WRITE_FLOOR,
        }

    return Benchmark(
        name="record_write",
        description=(
            "Batched ThreadLogWriter vs the frozen per-event append "
            "baseline (events/sec speedup)"
        ),
        unit="x",
        direction="higher",
        body=body,
        detail=detail,
        gates=[FloorGate(_record.WRITE_FLOOR)],
    )


def _record_zero_copy_bench(size):
    n_events = size(200_000, 100_000, 40_000)
    inner = size(3, 3, 2)
    state = {"pairs": []}

    def setup():
        return {"columns": _record.build_event_columns(n_events)}

    def body(s):
        pair = _record.zero_copy_sample(
            n_events, s["columns"], inner=inner
        )
        state["pairs"].append(pair)
        return pair[0] / pair[1]  # legacy / bulk = speedup

    def detail(_):
        t_legacy = median([p[0] for p in state["pairs"]])
        t_bulk = median([p[1] for p in state["pairs"]])
        return {
            "events": n_events,
            "legacy_events_per_sec": n_events / t_legacy,
            "bulk_events_per_sec": n_events / t_bulk,
            "legacy_ns_per_event": t_legacy / n_events * 1e9,
            "bulk_ns_per_event": t_bulk / n_events * 1e9,
            "floor": _record.ZERO_COPY_FLOOR,
        }

    return Benchmark(
        name="record_zero_copy",
        description=(
            "Bulk zero-copy column write (append_columns) vs the "
            "frozen per-event append baseline (events/sec speedup)"
        ),
        unit="x",
        direction="higher",
        body=body,
        setup=setup,
        detail=detail,
        gates=[FloorGate(_record.ZERO_COPY_FLOOR)],
    )


def _codec_ratio_bench(size):
    threads = size(8, 4, 2)
    frames = size(32_768, 16_384, 2_048)
    state = {"last": None}

    def setup():
        image = _analyzer.build_image()
        log = _analyzer.build_log(
            image, threads=threads, frames_per_thread=frames
        )
        return {"log": log, "entries": len(log)}

    def body(s):
        raw, packed = _record.codec_sizes(s["log"])
        state["last"] = (raw, packed)
        return raw / packed  # compression ratio

    def detail(s):
        raw, packed = state["last"]
        return {
            "entries": s["entries"],
            "threads": threads,
            "fixed_width_bytes": raw,
            "rev12_bytes": packed,
            "floor": _record.CODEC_RATIO_FLOOR,
        }

    return Benchmark(
        name="codec_ratio",
        description=(
            "Rev 1.2 columnar image size vs fixed-width bytes on the "
            "standard call/return workload (compression ratio)"
        ),
        unit="x",
        direction="higher",
        body=body,
        setup=setup,
        detail=detail,
        # The workload is deterministic, so every sample must clear
        # the floor — no CI slack needed or wanted.
        gates=[FloorGate(_record.CODEC_RATIO_FLOOR, mode="exact")],
        overrides={"warmup_max": 1, "repetitions": 3},
    )


def _columnar_decode_bench(size):
    n_entries = size(262_144, 65_536, 16_384)
    state = {"pairs": [], "log": None}

    def setup():
        log = _record.build_filled_log(n_entries)
        state["log"] = log
        return {"buf": log.to_bytes(), "version": log.version}

    def body(s):
        pair = _record.decode_sample(s["buf"], s["version"], n_entries)
        state["pairs"].append(pair)
        return pair[0] / pair[1]

    def detail(_):
        t_legacy = median([p[0] for p in state["pairs"]])
        t_columnar = median([p[1] for p in state["pairs"]])
        return {
            "entries": n_entries,
            "legacy_entries_per_sec": n_entries / t_legacy,
            "columnar_entries_per_sec": n_entries / t_columnar,
            "floor": _record.DECODE_FLOOR,
        }

    return Benchmark(
        name="columnar_decode",
        description=(
            "Columnar bulk decode vs the frozen per-entry LogEntry "
            "reader (entries/sec speedup)"
        ),
        unit="x",
        direction="higher",
        body=body,
        setup=setup,
        detail=detail,
        gates=[FloorGate(_record.DECODE_FLOOR)],
    )


# ----------------------------------------------------------------------
# analyzer


def _analyzer_vector_bench(size):
    threads = size(8, 4, 2)
    frames = size(16_000, 8_000, 2_000)

    def setup():
        image = _analyzer.build_image()
        log = _analyzer.build_log(
            image, threads=threads, frames_per_thread=frames
        )
        return {
            "analyzer": _analyzer.make_analyzer(image),
            "log": log,
            "entries": len(log),
        }

    def body(s):
        t_python, t_vector, (sequential, vector) = (
            _analyzer.vector_speedup_sample(s["analyzer"], s["log"])
        )
        # The differential guarantee, outside the timed region: both
        # engines must produce the identical profile on the clean log.
        assert vector.records == sequential.records
        assert vector.pipeline.shards_fallback == 0
        return t_python / t_vector

    def detail(s):
        return {
            "entries": s["entries"],
            "threads": threads,
            "floor": _analyzer.VECTOR_FLOOR,
        }

    return Benchmark(
        name="analyzer_vector",
        description=(
            "Vectorised whole-shard stack reconstruction vs the "
            "sequential oracle loop, single worker (speedup)"
        ),
        unit="x",
        direction="higher",
        body=body,
        setup=setup,
        detail=detail,
        gates=[FloorGate(_analyzer.VECTOR_FLOOR)],
        overrides={"warmup_max": 2},
    )


# ----------------------------------------------------------------------
# monitor


def _monitor_overhead_bench(size):
    loops = size(120_000, 60_000, 20_000)
    repeats = size(9, 5, 3)
    state = {"last": None}

    def setup():
        workload = _monitor.make_workload(loops)
        workload()  # warm up the bytecode and the branch predictors
        return workload

    def body(workload):
        baseline, monitored, samples, pass_p95 = (
            _monitor.overhead_sample(workload, repeats)
        )
        state["last"] = {
            "baseline_seconds": baseline,
            "monitored_seconds": monitored,
            "sampling_passes": samples,
            "sample_pass_p95_seconds": pass_p95,
        }
        # The monitor really ran, and each pass fit in its interval.
        assert samples >= 1
        return monitored / baseline - 1.0

    def detail(_):
        data = dict(state["last"])
        data.update({
            "interval_seconds": _monitor.INTERVAL,
            "repeats": repeats,
            "work_loops": loops,
            "budget_fraction": _monitor.OVERHEAD_BUDGET,
        })
        return data

    return Benchmark(
        name="monitor_overhead",
        description=(
            "Wall-clock overhead an attached polling Monitor imposes "
            "on a GIL-bound workload (fraction)"
        ),
        unit="fraction",
        direction="lower",
        body=body,
        setup=setup,
        detail=detail,
        gates=[CeilingGate(_monitor.OVERHEAD_BUDGET)],
        overrides={"warmup_max": 1},
    )


# ----------------------------------------------------------------------
# recovery


def _recovery_matrix_bench(size):
    crash_points = size(4, 3, 2)
    state = {"last": None}

    def body(_):
        matrix = _recovery.bench_fault_matrix(
            block=16, crash_points=crash_points
        )
        state["last"] = matrix
        return matrix["recovered_fraction"]

    def detail(_):
        return dict(state["last"])

    return Benchmark(
        name="recovery_matrix",
        description=(
            "Fraction of CRC-sealed segments recovered across the "
            "crash-phase x crash-point fault matrix"
        ),
        unit="fraction",
        direction="higher",
        body=body,
        detail=detail,
        # The paper-level promise is exact: a single lost sealed
        # segment in any sample is a failure, CI or no CI.
        gates=[FloorGate(_recovery.MATRIX_FLOOR, mode="exact")],
        overrides={"warmup_max": 1},
    )


def _seal_overhead_bench(size):
    n_events = size(100_000, 40_000, 10_000)
    state = {"pairs": []}

    def body(_):
        pair = _recovery.seal_overhead_sample(n_events)
        state["pairs"].append(pair)
        return pair[0] / pair[1]  # fraction of throughput retained

    def detail(_):
        t_plain = median([p[0] for p in state["pairs"]])
        t_sealed = median([p[1] for p in state["pairs"]])
        return {
            "events": n_events,
            "unsealed_events_per_sec": n_events / t_plain,
            "sealed_events_per_sec": n_events / t_sealed,
            "floor": _recovery.SEAL_FLOOR,
        }

    return Benchmark(
        name="seal_overhead",
        description=(
            "Fraction of unsealed batched write throughput retained "
            "with CRC seal journaling on"
        ),
        unit="fraction",
        direction="higher",
        body=body,
        detail=detail,
        gates=[FloorGate(_recovery.SEAL_FLOOR)],
    )


# ----------------------------------------------------------------------
# fleet


def _fleet_ingest_bench(size):
    segments = size(24, 12, 4)
    frames = size(2_000, 1_200, 300)
    state = {"rates": []}

    def setup():
        payloads, symtab, entries = _fleet.build_segments(
            segments, frames_per_thread=frames
        )
        return {
            "daemon": _fleet.build_daemon(),
            "payloads": payloads,
            "symtab": symtab,
            "entries": entries,
        }

    def body(s):
        rate = _fleet.ingest_sample(
            s["daemon"], s["payloads"], s["symtab"], s["entries"]
        )
        state["rates"].append(rate)
        return rate

    def teardown(s):
        s["daemon"].stop()

    def detail(s):
        return {
            "segments": segments,
            "entries_per_segment": s["entries"],
            "entries_per_sec": median(state["rates"]),
            "pool": s["daemon"].pool.kind,
            "floor": _fleet.INGEST_FLOOR,
        }

    return Benchmark(
        name="fleet_ingest",
        description=(
            "Sustained fleet ingest: packed segments through salvage, "
            "worker analysis and window fold-in (entries/sec)"
        ),
        unit="entries/s",
        direction="higher",
        body=body,
        setup=setup,
        teardown=teardown,
        detail=detail,
        gates=[FloorGate(_fleet.INGEST_FLOOR)],
        overrides={"warmup_max": 1},
    )


def _fleet_staleness_bench(size):
    batch = size(8, 5, 3)
    frames = size(1_200, 600, 200)

    def setup():
        payloads, symtab, entries = _fleet.build_segments(
            batch, frames_per_thread=frames
        )
        return {
            "daemon": _fleet.build_daemon(),
            "payloads": payloads,
            "symtab": symtab,
        }

    def body(s):
        return _fleet.staleness_sample(
            s["daemon"], s["payloads"], s["symtab"]
        )

    def teardown(s):
        s["daemon"].stop()

    def detail(s):
        return {
            "batch": batch,
            "pool": s["daemon"].pool.kind,
            "budget_seconds": _fleet.STALENESS_BUDGET,
        }

    return Benchmark(
        name="fleet_staleness",
        description=(
            "Worst publish-to-queryable lag for one segment against "
            "an idle daemon (seconds)"
        ),
        unit="s",
        direction="lower",
        body=body,
        setup=setup,
        teardown=teardown,
        detail=detail,
        gates=[CeilingGate(_fleet.STALENESS_BUDGET)],
        overrides={"warmup_max": 1},
    )


def _query_state(windows, paths):
    """Shared setup for the query benches: synthetic windows, the
    store under test, and the dict-oracle identity check (the frozen
    baseline must produce the *identical* merged profile — byte
    identity of the folded output, asserted before anything is
    timed)."""
    window_data = _fleet.build_query_windows(
        windows=windows, paths=paths
    )
    store = _fleet.build_query_store(window_data)
    oracle = _fleet.dict_merged_baseline(window_data)
    merged = store.merged("web")
    assert merged.folded() == oracle.folded
    assert (
        merged.flamegraph().to_folded()
        == oracle.profile().flamegraph().to_folded()
    )
    assert oracle.salvaged + oracle.quarantined == oracle.entries
    return {
        "store": store,
        "windows": window_data,
        "paths": paths,
        "retention": windows,
    }


def _query_detail(s, floor, state):
    start = _time.perf_counter()
    diff = s["store"].diff("web", 0, s["retention"] - 1)
    t_diff = _time.perf_counter() - start
    t_dict, t_cold, t_warm = (
        median([p[i] for p in state["samples"]]) for i in range(3)
    )
    return {
        "retention_windows": s["retention"],
        "paths_per_window": s["paths"],
        "dict_merge_ms": t_dict * 1e3,
        "cold_query_ms": t_cold * 1e3,
        "warm_query_ms": t_warm * 1e3,
        "diff_ms": t_diff * 1e3,
        "diff_methods": len(diff.deltas()),
        "floor": floor,
    }


def _fleet_query_bench(size):
    windows = size(64, 64, 16)
    paths = size(10_000, 10_000, 1_000)
    state = {"samples": []}

    def setup():
        return _query_state(windows, paths)

    def body(s):
        sample = _fleet.query_sample(s["store"], s["windows"])
        state["samples"].append(sample)
        return sample[0] / sample[2]  # dict / warm = speedup

    def detail(s):
        return _query_detail(s, _fleet.QUERY_WARM_FLOOR, state)

    return Benchmark(
        name="fleet_query",
        description=(
            "Warm-cache merged-profile query vs the frozen dict merge "
            "loop at retention x paths (speedup)"
        ),
        unit="x",
        direction="higher",
        body=body,
        setup=setup,
        detail=detail,
        gates=[FloorGate(_fleet.QUERY_WARM_FLOOR)],
        overrides={"warmup_max": 1},
    )


def _fleet_query_cold_bench(size):
    windows = size(64, 64, 16)
    paths = size(10_000, 10_000, 1_000)
    state = {"samples": []}

    def setup():
        return _query_state(windows, paths)

    def body(s):
        sample = _fleet.query_sample(s["store"], s["windows"])
        state["samples"].append(sample)
        return sample[0] / sample[1]  # dict / cold = speedup

    def detail(s):
        return _query_detail(s, _fleet.QUERY_COLD_FLOOR, state)

    return Benchmark(
        name="fleet_query_cold",
        description=(
            "Cold (flushed-cache) merged-profile query vs the frozen "
            "dict merge loop at retention x paths (speedup)"
        ),
        unit="x",
        direction="higher",
        body=body,
        setup=setup,
        detail=detail,
        gates=[FloorGate(_fleet.QUERY_COLD_FLOOR)],
        overrides={"warmup_max": 1},
    )


# ----------------------------------------------------------------------
# accuracy


def _accuracy_bench(size):
    rounds = size(120, 40, 12)
    state = {}

    def body(_):
        truth = _accuracy.truth_shares()
        tee = _accuracy.teeperf_shares(rounds=rounds)
        state["tee"] = tee
        state["truth"] = truth
        return _accuracy.max_error(tee, truth)

    def detail(_):
        sampled = _accuracy.perf_shares(rounds=rounds)
        return {
            "rounds": rounds,
            "ceiling": _accuracy.ACCURACY_CEILING,
            "perf_max_error": _accuracy.max_error(
                sampled, state["truth"]
            ),
            "truth_shares": state["truth"],
            "teeperf_shares": state["tee"],
        }

    return Benchmark(
        name="accuracy_error",
        description=(
            "TEE-Perf's worst per-method share error against the "
            "simulator's exact ground truth"
        ),
        unit="share",
        direction="lower",
        body=body,
        detail=detail,
        # The simulation is deterministic; any sample over the bound
        # is a real accuracy loss, so the gate is exact.
        gates=[CeilingGate(_accuracy.ACCURACY_CEILING, mode="exact")],
        overrides={"warmup_max": 1},
    )


# ----------------------------------------------------------------------


def build_registry(quick=False, smoke=None):
    """The suite, in run order.  ``smoke=None`` reads the env knob."""
    if smoke is None:
        smoke = smoke_mode()
    size = _profile(quick, smoke)
    return [
        _record_write_bench(size),
        _record_zero_copy_bench(size),
        _codec_ratio_bench(size),
        _columnar_decode_bench(size),
        _analyzer_vector_bench(size),
        _monitor_overhead_bench(size),
        _recovery_matrix_bench(size),
        _seal_overhead_bench(size),
        _fleet_ingest_bench(size),
        _fleet_staleness_bench(size),
        _fleet_query_bench(size),
        _fleet_query_cold_bench(size),
        _accuracy_bench(size),
    ]


def derived_views(results, quick=False):
    """Legacy per-bench artifacts as views of the suite result.

    ``results`` maps bench name -> :class:`BenchResult`.  Returns
    ``{filename: payload}`` for every legacy artifact whose source
    benchmarks all ran.  Each payload carries the keys its standalone
    script emits plus ``"derived_from": "BENCH_suite.json"``.
    """
    views = {}

    def stamp(payload, benchmark):
        payload.update({
            "benchmark": benchmark,
            "quick": bool(quick),
            "derived_from": "BENCH_suite.json",
        })
        return payload

    if "record_write" in results and "columnar_decode" in results:
        write = dict(results["record_write"].detail)
        write["speedup"] = results["record_write"].stats.median
        decode = dict(results["columnar_decode"].detail)
        decode["speedup"] = results["columnar_decode"].stats.median
        payload = {"write": write, "decode": decode}
        if "record_zero_copy" in results:
            zero_copy = dict(results["record_zero_copy"].detail)
            zero_copy["speedup"] = (
                results["record_zero_copy"].stats.median
            )
            payload["zero_copy"] = zero_copy
        if "codec_ratio" in results:
            codec = dict(results["codec_ratio"].detail)
            codec["ratio"] = results["codec_ratio"].stats.median
            payload["codec"] = codec
        views["BENCH_record.json"] = stamp(payload, "record_path")

    if "analyzer_vector" in results:
        r = results["analyzer_vector"]
        views["BENCH_analyze.json"] = stamp(
            {
                "entries": r.detail.get("entries"),
                "threads": r.detail.get("threads"),
                "vector_speedup": r.stats.median,
                "vector_floor": _analyzer.VECTOR_FLOOR,
            },
            "analyze_engines",
        )

    if "monitor_overhead" in results:
        r = results["monitor_overhead"]
        payload = dict(r.detail)
        payload["overhead_fraction"] = r.stats.median
        views["BENCH_monitor.json"] = stamp(payload, "monitor_overhead")

    if "recovery_matrix" in results:
        payload = {"fault_matrix": dict(results["recovery_matrix"].detail)}
        if "seal_overhead" in results:
            seal = dict(results["seal_overhead"].detail)
            seal["retained_fraction"] = (
                results["seal_overhead"].stats.median
            )
            payload["seal_overhead"] = seal
        views["BENCH_recovery.json"] = stamp(payload, "recovery")

    if "fleet_ingest" in results:
        payload = dict(results["fleet_ingest"].detail)
        payload["entries_per_sec"] = results["fleet_ingest"].stats.median
        if "fleet_staleness" in results:
            stale = dict(results["fleet_staleness"].detail)
            stale["worst_seconds"] = (
                results["fleet_staleness"].stats.median
            )
            payload["staleness"] = stale
        if "fleet_query" in results:
            query = dict(results["fleet_query"].detail)
            query["warm_speedup"] = results["fleet_query"].stats.median
            if "fleet_query_cold" in results:
                query["cold_speedup"] = (
                    results["fleet_query_cold"].stats.median
                )
            payload["query"] = query
        views["BENCH_fleet.json"] = stamp(payload, "fleet_ingest")

    if "accuracy_error" in results:
        r = results["accuracy_error"]
        views["BENCH_accuracy.json"] = stamp(
            {
                "tee_max_error": r.stats.median,
                "ceiling": _accuracy.ACCURACY_CEILING,
                "perf_max_error": r.detail.get("perf_max_error"),
                "rounds": r.detail.get("rounds"),
            },
            "accuracy",
        )

    return views
