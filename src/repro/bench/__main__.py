"""``python -m repro.bench`` — see :mod:`repro.bench.runner`."""

import sys

from repro.bench.runner import main

sys.exit(main())
