"""Shared timing and quick-mode plumbing for the benchmark layer.

Before ``repro.bench`` existed, every standalone benchmark script
carried its own copy of a best-of-N timer and its own reading of the
``REPRO_RUNS`` environment variable.  This module is the single home
for that plumbing: ``benchmarks/conftest.py`` and the standalone
scripts import from here, and the measurement harness
(:mod:`repro.bench.harness`) builds on the same primitives — one code
path whether a benchmark runs under pytest, standalone, or through
``python -m repro.bench``.
"""

import os
import time

__all__ = ["best_of", "runs", "time_call"]


def runs(default=3):
    """Repeated-run count for the legacy benchmark scripts.

    ``REPRO_RUNS`` scales the number of repeated runs per measurement
    (the paper uses 10; the default of 3 keeps the pytest benchmark
    suite fast).  The suite harness has its own repetition knobs
    (:class:`repro.bench.harness.HarnessConfig`); this function exists
    for the standalone scripts and ``benchmarks/conftest.py``.
    """
    return int(os.environ.get("REPRO_RUNS", str(default)))


def time_call(fn):
    """Wall-clock one call of ``fn``; returns ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def best_of(fn, repeats):
    """Best (minimum) wall-clock time of ``repeats`` calls of ``fn``.

    Minimum-of-N is the right point estimate for a *deterministic*
    body on a noisy machine: every source of error (scheduler, cache
    state, GC) only ever adds time.  The suite harness deliberately
    does **not** use it — it keeps every sample and reports
    distribution-aware statistics — but the standalone before/after
    scripts still do, and they all share this one implementation.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
