"""The consolidated suite artifact: ``benchmarks/out/BENCH_suite.json``.

One schema-versioned file merges every benchmark's samples, robust
statistics, gate verdicts and the environment fingerprint — the
machine-readable perf trajectory the ROADMAP asks for.  The legacy
per-bench artifacts (``BENCH_record.json``, ``BENCH_recovery.json``,
``BENCH_monitor.json``) are emitted as *derived views* of the suite
(each stamped ``"derived_from": "BENCH_suite.json"``) so existing CI
consumers keep working while the suite stays the single source of
truth.
"""

import json
import os
import pathlib
import platform
import sys

from repro.bench.gates import BaselineGate
from repro.bench.stats import SampleStats

__all__ = [
    "SCHEMA",
    "baseline_gate_for",
    "default_out_dir",
    "environment_fingerprint",
    "load_suite",
    "suite_payload",
    "write_suite",
]

#: Bump on any incompatible change to the suite layout.
SCHEMA = "teeperf-bench-suite/1"


def default_out_dir():
    """Where suite artifacts land: ``$REPRO_BENCH_OUT`` when set, else
    ``benchmarks/out`` under the current working directory (the repo
    checkout layout CI runs from)."""
    env = os.environ.get("REPRO_BENCH_OUT")
    if env:
        return pathlib.Path(env)
    return pathlib.Path("benchmarks") / "out"


def environment_fingerprint():
    """Enough about the host to interpret (and distrust) the numbers."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }


def suite_payload(results, quick=False, baseline=None):
    """The complete suite dict for a list of
    :class:`~repro.bench.harness.BenchResult`."""
    return {
        "schema": SCHEMA,
        "quick": bool(quick),
        "environment": environment_fingerprint(),
        "baseline": baseline,
        "benchmarks": {r.name: r.to_dict() for r in results},
        "passed": all(r.passed for r in results),
    }


def write_suite(results, path, quick=False, baseline=None):
    """Write the consolidated suite JSON; returns the payload."""
    payload = suite_payload(results, quick=quick, baseline=baseline)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def load_suite(path):
    """Parse a suite file, validating the schema version."""
    data = json.loads(pathlib.Path(path).read_text())
    schema = data.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"unsupported suite schema {schema!r} (expected {SCHEMA!r})"
        )
    return data


def baseline_gate_for(baseline_suite, name, rel_tol=0.10):
    """A :class:`~repro.bench.gates.BaselineGate` for benchmark
    ``name`` from a loaded baseline suite, or ``None`` when the
    baseline does not cover it (or was itself handicapped — a doctored
    baseline must never gate a real run)."""
    bench = baseline_suite.get("benchmarks", {}).get(name)
    if bench is None or bench.get("handicap", 1.0) != 1.0:
        return None
    stats = SampleStats.from_dict(bench["stats"])
    return BaselineGate(stats.to_dict(), rel_tol=rel_tol)
