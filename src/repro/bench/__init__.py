"""``repro.bench`` — the statistically rigorous benchmark harness.

The MooBench/Cloudprofiler-style measurement layer (ROADMAP item 5):
every performance claim this repository publishes flows through one
pipeline — warmup detection, repeated measurement, robust statistics,
distribution-aware regression gates, and a single consolidated
``benchmarks/out/BENCH_suite.json`` artifact.  See
docs/benchmarking.md for the methodology and the schema.

Layout:

* :mod:`~repro.bench.timing` — the shared timer / quick-mode plumbing
  (``best_of``, ``runs``) the standalone scripts and
  ``benchmarks/conftest.py`` import;
* :mod:`~repro.bench.stats` — median/MAD/bootstrap-CI summaries,
  permutation-invariant by construction;
* :mod:`~repro.bench.harness` — warmup + repetition orchestration
  (:class:`Benchmark`, :class:`HarnessConfig`, :func:`run_benchmark`);
* :mod:`~repro.bench.gates` — floor/ceiling/baseline gates that judge
  confidence intervals, not single runs;
* :mod:`~repro.bench.suite` — the schema-versioned suite emitter and
  environment fingerprint;
* :mod:`~repro.bench.workloads` — the measurement cores shared with
  the ``benchmarks/bench_*.py`` scripts;
* :mod:`~repro.bench.ports` / :mod:`~repro.bench.runner` — the
  registry and the ``python -m repro.bench`` entry point.
"""

from repro.bench.gates import (
    BaselineGate,
    CeilingGate,
    FloorGate,
    Gate,
    GateVerdict,
)
from repro.bench.harness import (
    BenchResult,
    Benchmark,
    HarnessConfig,
    run_benchmark,
    steady_state_index,
)
from repro.bench.stats import SampleStats, summarize
from repro.bench.suite import (
    SCHEMA,
    default_out_dir,
    environment_fingerprint,
    load_suite,
    write_suite,
)
from repro.bench.timing import best_of, runs

__all__ = [
    "BaselineGate",
    "BenchResult",
    "Benchmark",
    "CeilingGate",
    "FloorGate",
    "Gate",
    "GateVerdict",
    "HarnessConfig",
    "SCHEMA",
    "SampleStats",
    "best_of",
    "default_out_dir",
    "environment_fingerprint",
    "load_suite",
    "run_benchmark",
    "runs",
    "steady_state_index",
    "summarize",
    "write_suite",
]
