"""The measurement harness: warmup detection, repetitions, statistics.

MooBench-style orchestration for one benchmark:

1. **Warmup** — the body runs until a sliding window of samples is
   *steady* (window spread within a tolerance of the window median) or
   a cap is hit; warmup samples are discarded but counted, and whether
   steady state was actually reached is recorded in the result.
2. **Measurement** — ``repetitions`` samples are collected, each the
   median of ``invocations`` body calls (one call by default: the
   ported benchmarks return a derived metric per call, e.g. a speedup,
   rather than a raw duration).
3. **Statistics** — samples become a :class:`~repro.bench.stats.
   SampleStats` (median, MAD, confidence interval, outlier tags).
4. **Gates** — each of the benchmark's gates renders a verdict against
   the distribution (see :mod:`repro.bench.gates`).

A :class:`Benchmark` body is a plain callable ``body(state) -> float``
where ``state`` is whatever ``setup()`` returned — the five ported
benchmarks wrap the exact measurement cores the standalone scripts
use (:mod:`repro.bench.workloads`), so both entry points share one
code path.
"""

import time
from dataclasses import dataclass, field

from repro.bench.stats import median, summarize

__all__ = [
    "BenchResult",
    "Benchmark",
    "HarnessConfig",
    "run_benchmark",
    "steady_state_index",
]


@dataclass(frozen=True)
class HarnessConfig:
    """Knobs for one harness run (shared by every benchmark)."""

    repetitions: int = 5
    invocations: int = 1
    warmup_max: int = 3          # body calls spent hunting steady state
    warmup_window: int = 3       # sliding-window width
    warmup_tolerance: float = 0.10  # spread/median bound for "steady"
    ci_level: float = 0.95
    ci_method: str = "bootstrap"
    bootstrap_resamples: int = 2000
    seed: int = 0

    def replace(self, **kw):
        from dataclasses import replace as _replace
        return _replace(self, **kw)


@dataclass
class Benchmark:
    """One suite benchmark: a measured body plus its gate contract."""

    name: str
    description: str
    unit: str                      # "x", "fraction", "share", ...
    direction: str                 # "higher" | "lower"
    body: callable = None          # body(state) -> float sample
    setup: callable = None         # () -> state (None -> state is None)
    teardown: callable = None      # (state) -> None
    gates: list = field(default_factory=list)
    detail: callable = None        # (state) -> dict, after sampling
    # Per-benchmark overrides of the harness config (e.g. an expensive
    # body capping its warmup at 1):
    overrides: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.direction not in ("higher", "lower"):
            raise ValueError(f"bad direction: {self.direction!r}")
        if self.body is None:
            raise ValueError("a Benchmark needs a body")


@dataclass
class BenchResult:
    """Everything the suite file records about one benchmark."""

    name: str
    description: str
    unit: str
    direction: str
    samples: list
    stats: object                 # SampleStats
    verdicts: list                # [GateVerdict, ...]
    repetitions: int
    invocations: int
    warmup: dict
    seconds: float                # wall clock of the whole run
    detail: dict = field(default_factory=dict)
    handicap: float = 1.0

    @property
    def passed(self):
        return all(v.passed for v in self.verdicts)

    def to_dict(self):
        return {
            "description": self.description,
            "unit": self.unit,
            "direction": self.direction,
            "repetitions": self.repetitions,
            "invocations": self.invocations,
            "samples": list(self.samples),
            "stats": self.stats.to_dict(),
            "warmup": dict(self.warmup),
            "gates": [v.to_dict() for v in self.verdicts],
            "passed": self.passed,
            "seconds": self.seconds,
            "handicap": self.handicap,
            "detail": dict(self.detail),
        }


def steady_state_index(samples, window, tolerance):
    """First index ``i`` whose trailing ``window`` samples are steady.

    Steady means ``max - min <= tolerance * |median|`` over the window
    (an all-equal window is steady even at median zero).  Returns
    ``None`` when no window qualifies — the caller records that
    steady state was never reached rather than failing.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    for i in range(window - 1, len(samples)):
        win = samples[i - window + 1:i + 1]
        spread = max(win) - min(win)
        med = abs(median(win))
        if spread == 0.0 or (med > 0 and spread <= tolerance * med):
            return i
    return None


def run_benchmark(bench, config=None, handicap=1.0):
    """Run one :class:`Benchmark` under a :class:`HarnessConfig`.

    ``handicap`` multiplies every measured sample — the documented
    self-test of the gate path (``python -m repro.bench --handicap
    name=0.5`` makes a healthy speedup look halved and must flip its
    floor gate to fail).  It is recorded in the result so a
    handicapped suite file can never masquerade as a real one.
    """
    config = config or HarnessConfig()
    if bench.overrides:
        config = config.replace(**bench.overrides)
    if config.repetitions < 1 or config.invocations < 1:
        raise ValueError("repetitions and invocations must be >= 1")

    started = time.perf_counter()
    state = bench.setup() if bench.setup is not None else None
    try:
        # --- warmup: discard until steady or capped -----------------
        warm = []
        steady_at = None
        for _ in range(config.warmup_max):
            warm.append(float(bench.body(state)))
            steady_at = steady_state_index(
                warm, min(config.warmup_window, len(warm)),
                config.warmup_tolerance,
            ) if len(warm) >= config.warmup_window else None
            if steady_at is not None:
                break
        warmup = {
            "discarded": len(warm),
            "steady": steady_at is not None or config.warmup_max == 0,
            "window": config.warmup_window,
            "tolerance": config.warmup_tolerance,
        }

        # --- measurement --------------------------------------------
        samples = []
        for _ in range(config.repetitions):
            calls = [
                float(bench.body(state))
                for _ in range(config.invocations)
            ]
            samples.append(median(calls) * handicap)

        detail = bench.detail(state) if bench.detail is not None else {}
    finally:
        if bench.teardown is not None:
            bench.teardown(state)

    stats = summarize(
        samples,
        level=config.ci_level,
        method=config.ci_method,
        resamples=config.bootstrap_resamples,
        seed=config.seed,
    )
    verdicts = [
        gate.evaluate(stats, samples, bench.direction)
        for gate in bench.gates
    ]
    return BenchResult(
        name=bench.name,
        description=bench.description,
        unit=bench.unit,
        direction=bench.direction,
        samples=samples,
        stats=stats,
        verdicts=verdicts,
        repetitions=config.repetitions,
        invocations=config.invocations,
        warmup=warmup,
        seconds=time.perf_counter() - started,
        detail=detail,
        handicap=handicap,
    )
