#!/usr/bin/env python3
"""The full §IV-C case study: find and fix SPDK's enclave bottlenecks.

1. Measure SPDK perf natively and inside the SGX model — the IOPS
   collapse (~224k -> ~16k).
2. Profile the naive port with TEE-Perf — the flame graph shows ~72 %
   of the time in getpid (a synchronous ocall per request) and ~20 %
   in rdtsc (emulated inside SGX v1).
3. Apply the paper's fix — cache the pid forever and serve timestamps
   from a cached value corrected every N calls.
4. Re-measure: back above native (the cached build skips even the
   native getpid cost), a ~14.7x improvement.

Run:  python examples/spdk_optimization.py
"""

import pathlib

from repro.api import FlameGraph
from repro.core import AnalysisDiff
from repro.spdk import profile_spdk_perf, run_spdk_perf
from repro.tee import NATIVE, SGX_V1

OUT = pathlib.Path(__file__).parent / "out"


def main():
    OUT.mkdir(exist_ok=True)

    print("step 1 — measure (no profiler attached)")
    native = run_spdk_perf(NATIVE, optimized=False, ops=2_000)
    naive = run_spdk_perf(SGX_V1, optimized=False, ops=600)
    print(f"  native: {native.report()}")
    print(f"  sgx:    {naive.report()}")
    print(f"  the enclave port runs {native.iops / naive.iops:.1f}x slower\n")

    print("step 2 — profile the naive port with TEE-Perf")
    perf, _, _, analysis = profile_spdk_perf(
        platform=SGX_V1, optimized=False, ops=500
    )
    perf.uninstrument()
    graph = FlameGraph.from_analysis(
        analysis, title="SPDK in SGX, unoptimized"
    )
    graph.write_svg(str(OUT / "spdk_unoptimized.svg"))
    print(f"  getpid share of runtime: {graph.share('getpid'):.1%}")
    print(f"  rdtsc  share of runtime: {graph.share('rdtsc'):.1%}")
    print("  -> cache the pid; cache timestamps with periodic "
          "correction\n")

    print("step 3 — re-measure the optimized build")
    optimized = run_spdk_perf(SGX_V1, optimized=True, ops=2_000)
    print(f"  sgx optimized: {optimized.report()}")
    print(f"  improvement over naive: "
          f"{optimized.iops / naive.iops:.1f}x (paper: 14.7x)")
    print(f"  vs native: {optimized.iops / native.iops:.2f}x "
          "(the cached build beats native)\n")

    print("step 4 — confirm with a second profile")
    perf2, _, _, analysis2 = profile_spdk_perf(
        platform=SGX_V1, optimized=True, ops=500
    )
    perf2.uninstrument()
    graph2 = FlameGraph.from_analysis(
        analysis2, title="SPDK in SGX, optimized"
    )
    graph2.write_svg(str(OUT / "spdk_optimized.svg"))
    print(f"  getpid share now: {graph2.share('getpid'):.1%}")
    print(f"  rdtsc  share now: {graph2.share('rdtsc'):.1%}")

    print("\nstep 5 — differential profile (before vs after)")
    diff = AnalysisDiff(analysis, analysis2)
    print(diff.report(top=8))
    diff.flamegraph(title="SPDK optimization: before vs after").write_svg(
        str(OUT / "spdk_diff.svg")
    )
    print(f"\n  flame graphs written to {OUT}/spdk_*.svg")


if __name__ == "__main__":
    main()
