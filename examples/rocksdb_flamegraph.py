#!/usr/bin/env python3
"""The Figure-5 experiment: profile db_bench inside SGX.

Loads an LSM store, runs db_bench's ReadRandomWriteRandom (80 % reads)
under TEE-Perf in the SGX v1 model, prints the analyzer's view, runs a
few declarative queries, and writes the flame graph.  The output shows
the paper's finding: most of the time disappears into
``rocksdb::Stats::Now()`` (an emulated rdtsc per op) and the
``rocksdb::RandomGenerator`` constructor.

Run:  python examples/rocksdb_flamegraph.py
"""

import pathlib

from repro.api import FlameGraph
from repro.core import QuerySession
from repro.kvstore.profiled import profile_db_bench
from repro.tee import SGX_V1

OUT = pathlib.Path(__file__).parent / "out"


def main():
    OUT.mkdir(exist_ok=True)
    print("profiling db_bench (readrandomwriterandom, 80% reads) "
          "inside the SGX v1 model...\n")
    perf, bench, analysis = profile_db_bench(
        platform=SGX_V1,
        num_keys=500,
        ops_per_thread=300,
        threads=4,
        generator_bytes=256 * 1024,
    )
    try:
        print(analysis.report(top=12))
        print()
        print(bench.report())

        session = QuerySession(analysis)
        print("\nhottest methods by exclusive time:")
        print(session.hottest(5))
        print("\ncallers of rocksdb::Stats::Now():")
        print(session.callers_of("rocksdb::Stats::Now()"))

        graph = FlameGraph.from_analysis(
            analysis, title="RocksDB db_bench in SGX (TEE-Perf)"
        )
        svg = OUT / "rocksdb_flamegraph.svg"
        graph.write_svg(str(svg))
        print(f"\nStats::Now share of the flame graph: "
              f"{graph.share('rocksdb::Stats::Now()'):.1%}")
        print(f"flame graph written to {svg}")
    finally:
        perf.uninstrument()


if __name__ == "__main__":
    main()
