#!/usr/bin/env python3
"""Figure-4-style experiment on one Phoenix benchmark.

Runs word_count inside the SGX v1 model three ways — unprofiled, under
the Linux-perf model, and under TEE-Perf — and prints the runtimes,
the overhead ratio the paper plots, and the two profilers' views of
the same execution side by side.

Run:  python examples/phoenix_sgx_overhead.py [workload]
"""

import sys

from repro.phoenix import (
    run_baseline,
    run_perf,
    run_teeperf,
    workload_by_name,
)
from repro.tee import SGX_V1


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "word_count"
    workload = workload_by_name(name)
    print(f"workload: {name} (4 workers, SGX v1 model)\n")

    base = run_baseline(workload, platform=SGX_V1, seed=1)
    perf = run_perf(workload, platform=SGX_V1, seed=1)
    tee = run_teeperf(workload, platform=SGX_V1, seed=1)

    ms = lambda cycles: cycles / 3.6e9 * 1e3  # noqa: E731
    print(f"{'configuration':<22} {'runtime':>12}")
    print(f"{'no profiler':<22} {ms(base.elapsed_cycles):>10.2f} ms")
    print(f"{'Linux perf (model)':<22} {ms(perf.elapsed_cycles):>10.2f} ms")
    print(f"{'TEE-Perf':<22} {ms(tee.elapsed_cycles):>10.2f} ms")
    ratio = tee.elapsed_cycles / perf.elapsed_cycles
    print(f"\nTEE-Perf overhead relative to perf (Figure 4): {ratio:.2f}x")

    print("\n--- what perf saw (sampled) " + "-" * 30)
    print(perf.perf.report(top=6))
    print("\n--- what TEE-Perf saw (traced) " + "-" * 27)
    print(tee.analysis.report(top=6))


if __name__ == "__main__":
    main()
