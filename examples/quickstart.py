#!/usr/bin/env python3
"""Quickstart: profile a real multithreaded Python program, live.

TEE-Perf's pipeline in four stages on actual code (no simulation):

1. compile  — instrument the functions of this module;
2. record   — run them under the recorder with a real software-counter
              thread;
3. analyze  — reconstruct per-thread call stacks, inclusive/exclusive
              times, and print the method table;
4. visualize — write a Flame Graph SVG next to this script.

Run:  python examples/quickstart.py
"""

import pathlib
import sys
import threading

from repro.api import TEEPerf

THIS_MODULE = sys.modules[__name__]
OUT = pathlib.Path(__file__).parent / "out"


def tokenize(text):
    return [token for token in text.replace(",", " ").split() if token]


def count_words(text):
    counts = {}
    for token in tokenize(text):
        counts[token] = counts.get(token, 0) + 1
    return counts


def busy_hash(data, rounds=40_000):
    value = 17
    for i in range(rounds):
        value = (value * 31 + (i & 0xFF)) & 0xFFFFFFFF
    return value ^ len(data)


def worker(corpus):
    counts = count_words(corpus)
    return busy_hash(corpus), counts


def run_workers(n_threads=4):
    corpus = "the quick brown fox jumps over the lazy dog " * 400
    threads = [
        threading.Thread(target=worker, args=(corpus,))
        for _ in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def main():
    OUT.mkdir(exist_ok=True)
    perf = TEEPerf.live(name="quickstart")
    perf.compile_module(THIS_MODULE)  # stage 1
    try:
        perf.record(run_workers)  # stage 2
        analysis = perf.analyze()  # stage 3
        print(analysis.report())
        print()
        session = perf.query()
        print("Which thread called which method how often:")
        print(session.thread_method_counts())
        svg = OUT / "quickstart_flamegraph.svg"
        perf.flamegraph(title="quickstart (live)").write_svg(str(svg))
        print(f"\nflame graph written to {svg}")
    finally:
        perf.uninstrument()


if __name__ == "__main__":
    main()
