#!/usr/bin/env python3
"""The declarative query interface (§II-C) on a contended workload.

Profiles a workload where several threads fight over one lock, then
answers the questions the paper's query interface is built for:
which thread called which method how often, who calls what, and where
the contention hides (a method whose worst invocation dwarfs its mean).

Run:  python examples/query_interface.py
"""

from repro.api import TEEPerf
from repro.core import symbol
from repro.machine import SimLock
from repro.tee import SGX_V1


class ContentedApp:
    """Four threads hash locally, then append under a shared lock."""

    def __init__(self, machine, env, threads=4, rounds=30):
        self.machine = machine
        self.env = env
        self.threads = threads
        self.rounds = rounds
        self.lock = SimLock(name="results")
        self.results = []

    @symbol("app::Main()")
    def main(self):
        workers = [
            self.machine.spawn(self.worker, i, name=f"worker-{i}")
            for i in range(self.threads)
        ]
        for worker in workers:
            worker.join()
        return len(self.results)

    @symbol("app::Worker(int)")
    def worker(self, index):
        for round_ in range(self.rounds):
            digest = self.hash_block(index, round_)
            self.publish(digest)

    @symbol("app::HashBlock(int, int)")
    def hash_block(self, index, round_):
        self.env.compute(40_000)
        self.env.mem_read(4_096)
        return (index * 2654435761 + round_) & 0xFFFFFFFF

    @symbol("app::Publish(int)")
    def publish(self, digest):
        with self.lock:
            self.env.compute(25_000)  # long critical section on purpose
            self.results.append(digest)


def main():
    perf = TEEPerf.simulated(platform=SGX_V1, name="contended")
    app = ContentedApp(perf.machine, perf.env)
    perf.compile_instance(app)
    produced = perf.record(app.main)
    perf.analyze()
    session = perf.query()

    print(f"workload produced {produced} results\n")
    print("profile summary:")
    print(session.summary())

    print("\n1. which thread called which method how often:")
    print(session.thread_method_counts())

    print("\n2. hottest methods (exclusive time):")
    print(session.hottest(4))

    print("\n3. what does app::Worker(int) call?")
    print(session.callees_of("app::Worker(int)"))

    print("\n4. contention candidates (worst/mean invocation skew):")
    print(session.contention_candidates(3))

    print("\n5. per-caller timing of app::Publish(int):")
    print(session.method_by_call_history("app::Publish(int)"))

    print(f"\nlock statistics: {app.lock.acquisitions} acquisitions, "
          f"{app.lock.contentions} contended")


if __name__ == "__main__":
    main()
